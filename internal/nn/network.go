package nn

import (
	"fmt"

	"condor/internal/tensor"
)

// Network is a linear chain of layers, the topology class Condor targets
// (classic feed-forward CNNs: features extraction followed by an MLP).
type Network struct {
	Name   string
	Input  Shape
	Layers []*Layer
}

// Validate checks that the chain is well-formed: shapes propagate, weights
// match geometry, and the features-extraction stage precedes the
// classification stage (the structure in the paper's Figure 1).
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("nn: network %q has no layers", n.Name)
	}
	if n.Input.Volume() <= 0 {
		return fmt.Errorf("nn: network %q has empty input shape %v", n.Name, n.Input)
	}
	in := n.Input
	seenClassifier := false
	for _, l := range n.Layers {
		if l.Kind.IsClassifier() {
			seenClassifier = true
		} else if seenClassifier && l.Kind.IsFeatureExtraction() {
			return fmt.Errorf("nn: network %q: features-extraction layer %q after classification stage", n.Name, l.Name)
		}
		if l.Kind.IsFeatureExtraction() {
			if l.Kernel <= 0 {
				return fmt.Errorf("nn: layer %q has non-positive kernel %d", l.Name, l.Kernel)
			}
			if l.Stride <= 0 {
				return fmt.Errorf("nn: layer %q has non-positive stride %d", l.Name, l.Stride)
			}
			if l.Pad < 0 {
				return fmt.Errorf("nn: layer %q has negative padding %d", l.Name, l.Pad)
			}
		}
		if err := l.CheckWeights(in); err != nil {
			return err
		}
		out, err := l.OutputShape(in)
		if err != nil {
			return err
		}
		if out.Volume() <= 0 {
			return fmt.Errorf("nn: layer %q produces empty output %v", l.Name, out)
		}
		in = out
	}
	return nil
}

// ShapeAt returns the input shape of layer i (ShapeAt(0) == Input) and, for
// i == len(Layers), the network output shape.
func (n *Network) ShapeAt(i int) (Shape, error) {
	in := n.Input
	for j := 0; j < i && j < len(n.Layers); j++ {
		out, err := n.Layers[j].OutputShape(in)
		if err != nil {
			return Shape{}, err
		}
		in = out
	}
	return in, nil
}

// OutputShape returns the shape of the network output.
func (n *Network) OutputShape() (Shape, error) { return n.ShapeAt(len(n.Layers)) }

// TotalFLOPs returns the floating-point operations of one full forward pass.
func (n *Network) TotalFLOPs() int64 {
	var total int64
	in := n.Input
	for _, l := range n.Layers {
		total += l.FLOPs(in)
		out, err := l.OutputShape(in)
		if err != nil {
			return total
		}
		in = out
	}
	return total
}

// FeatureExtractionFLOPs returns the FLOPs of the features-extraction stage
// only (convolutional and sub-sampling layers plus their fused activations),
// the quantity Table 2 of the paper reports throughput for.
func (n *Network) FeatureExtractionFLOPs() int64 {
	var total int64
	in := n.Input
	for _, l := range n.Layers {
		if l.Kind.IsFeatureExtraction() || (l.Kind.IsActivation() && !priorClassifier(n, l)) {
			total += l.FLOPs(in)
		}
		out, err := l.OutputShape(in)
		if err != nil {
			return total
		}
		in = out
	}
	return total
}

// priorClassifier reports whether a classifier layer precedes l in the chain,
// which marks activation layers as belonging to the MLP stage.
func priorClassifier(n *Network, l *Layer) bool {
	for _, x := range n.Layers {
		if x == l {
			return false
		}
		if x.Kind.IsClassifier() {
			return true
		}
	}
	return false
}

// Forward runs the golden reference forward pass on a single CHW input and
// returns the activations after every layer (index i holds the output of
// layer i). This is the correctness oracle for the hardware fabric.
func (n *Network) Forward(in *tensor.Tensor) ([]*tensor.Tensor, error) {
	if got, want := in.Shape(), (n.Input); len(got) != 3 || got[0] != want.Channels || got[1] != want.Height || got[2] != want.Width {
		return nil, fmt.Errorf("nn: input shape %v, want %v", in.Shape(), want)
	}
	acts := make([]*tensor.Tensor, len(n.Layers))
	cur := in
	shape := n.Input
	for i, l := range n.Layers {
		out, err := forwardLayer(l, cur, shape)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, l.Name, err)
		}
		acts[i] = out
		shape, err = l.OutputShape(shape)
		if err != nil {
			return nil, err
		}
		cur = out
	}
	return acts, nil
}

// Predict runs a forward pass and returns only the final output tensor.
func (n *Network) Predict(in *tensor.Tensor) (*tensor.Tensor, error) {
	acts, err := n.Forward(in)
	if err != nil {
		return nil, err
	}
	return acts[len(acts)-1], nil
}

// FeatureLayers returns the indices of layers in the features-extraction
// stage (sliding-window layers).
func (n *Network) FeatureLayers() []int {
	var idx []int
	for i, l := range n.Layers {
		if l.Kind.IsFeatureExtraction() {
			idx = append(idx, i)
		}
	}
	return idx
}

// ClassifierLayers returns the indices of fully-connected layers.
func (n *Network) ClassifierLayers() []int {
	var idx []int
	for i, l := range n.Layers {
		if l.Kind == FullyConnected {
			idx = append(idx, i)
		}
	}
	return idx
}

// LayerByName returns the first layer with the given name, or nil.
func (n *Network) LayerByName(name string) *Layer {
	for _, l := range n.Layers {
		if l.Name == name {
			return l
		}
	}
	return nil
}
