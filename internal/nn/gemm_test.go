package nn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"condor/internal/tensor"
)

func TestIm2ColKnownValues(t *testing.T) {
	in := tensor.FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	cols, err := Im2Col(in, Shape{1, 3, 3}, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cols.Dim(0) != 4 || cols.Dim(1) != 4 {
		t.Fatalf("im2col shape %v", cols.Shape())
	}
	// Row 0 is access (0,0) of each window: 1,2,4,5.
	want := []float32{1, 2, 4, 5}
	for j, v := range want {
		if cols.At(0, j) != v {
			t.Fatalf("im2col[0][%d] = %v, want %v", j, cols.At(0, j), v)
		}
	}
	// Row 3 is access (1,1): 5,6,8,9.
	want = []float32{5, 6, 8, 9}
	for j, v := range want {
		if cols.At(3, j) != v {
			t.Fatalf("im2col[3][%d] = %v, want %v", j, cols.At(3, j), v)
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	in := tensor.FromSlice([]float32{5}, 1, 1, 1)
	cols, err := Im2Col(in, Shape{1, 1, 1}, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One window; only the centre access (1,1) = row 4 is non-zero.
	for r := 0; r < 9; r++ {
		want := float32(0)
		if r == 4 {
			want = 5
		}
		if cols.At(r, 0) != want {
			t.Fatalf("im2col[%d][0] = %v, want %v", r, cols.At(r, 0), want)
		}
	}
}

func TestIm2ColErrors(t *testing.T) {
	in := tensor.New(1, 2, 2)
	if _, err := Im2Col(in, Shape{1, 2, 2}, 5, 1, 0); err == nil {
		t.Fatal("expected window-too-large error")
	}
	if _, err := Im2Col(in, Shape{1, 4, 4}, 2, 1, 0); err == nil {
		t.Fatal("expected volume-mismatch error")
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := tensor.FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{19, 22, 43, 50}
	for i, v := range want {
		if c.Data()[i] != v {
			t.Fatalf("matmul[%d] = %v, want %v", i, c.Data()[i], v)
		}
	}
}

func TestMatMulErrors(t *testing.T) {
	if _, err := MatMul(tensor.New(2, 3), tensor.New(2, 2)); err == nil {
		t.Fatal("expected inner-dim error")
	}
	if _, err := MatMul(tensor.New(4), tensor.New(2, 2)); err == nil {
		t.Fatal("expected rank error")
	}
}

// Property: the GEMM formulation computes the same network outputs as the
// direct engine (exactly for FC, within reassociation noise for conv).
func TestGEMMForwardMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(2) + 2
		stride := rng.Intn(2) + 1
		pad := rng.Intn(2)
		n := &Network{
			Name:  "gemm-prop",
			Input: Shape{Channels: rng.Intn(2) + 1, Height: 9, Width: 9},
		}
		n.Layers = []*Layer{
			randConv("c1", n.Input.Channels, rng.Intn(3)+1, k, stride, pad, true, seed),
			{Name: "r1", Kind: ReLU},
			{Name: "p1", Kind: MaxPool, Kernel: 2, Stride: 2},
		}
		s, err := n.ShapeAt(3)
		if err != nil || s.Volume() <= 0 {
			return true
		}
		n.Layers = append(n.Layers,
			randFC("f1", s.Volume(), 5, true, seed+1),
			&Layer{Name: "sm", Kind: SoftMax},
		)
		if err := n.Validate(); err != nil {
			return true
		}
		in := tensor.New(n.Input.Channels, n.Input.Height, n.Input.Width)
		in.FillRandom(rng, 1)
		direct, err := n.Predict(in)
		if err != nil {
			return false
		}
		gemm, err := n.GEMMForward(in)
		if err != nil {
			return false
		}
		return tensor.AllClose(direct, gemm, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColWords(t *testing.T) {
	l := &Layer{Kind: Conv, Kernel: 3, Stride: 1, Pad: 1, OutputCount: 8}
	in := Shape{Channels: 4, Height: 8, Width: 8}
	// 4*9 rows x 64 cols = 2304 — a 9x duplication of the 256-word input.
	if got := Im2ColWords(l, in); got != 2304 {
		t.Fatalf("im2col words = %d", got)
	}
}

func TestGEMMForwardInputValidation(t *testing.T) {
	n := smallNet(t)
	if _, err := n.GEMMForward(tensor.New(1, 2, 2)); err == nil {
		t.Fatal("expected input-shape error")
	}
}
