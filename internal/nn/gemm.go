package nn

import (
	"fmt"

	"condor/internal/tensor"
)

// This file implements the unified matrix-multiplication formulation of CNN
// layers used by the baseline accelerators the paper compares against
// (Caffeine, Zhang et al. ICCAD'16; Suda et al. FPGA'16): convolutions are
// lowered to GEMM via im2col, and fully-connected layers are GEMV. It
// serves as an independent second implementation of the reference engine
// (cross-checked against the direct forward pass) and as the computational
// model of the baseline systolic accelerator in internal/baseline.

// Im2Col lowers a CHW input into the im2col matrix for a square window:
// each output column is one window position, each row one (channel, m, n)
// element of the receptive field. Output shape: [C*K*K, OutH*OutW].
func Im2Col(in *tensor.Tensor, shape Shape, k, stride, pad int) (*tensor.Tensor, error) {
	if in.Len() != shape.Volume() {
		return nil, fmt.Errorf("nn: im2col input volume %d, want %d", in.Len(), shape.Volume())
	}
	outH := (shape.Height+2*pad-k)/stride + 1
	outW := (shape.Width+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("nn: im2col window %d does not fit input %v", k, shape)
	}
	rows := shape.Channels * k * k
	cols := outH * outW
	out := tensor.New(rows, cols)
	dst := out.Data()
	src := in.Data()
	h, w := shape.Height, shape.Width
	for c := 0; c < shape.Channels; c++ {
		cmap := src[c*h*w : (c+1)*h*w]
		for m := 0; m < k; m++ {
			for n := 0; n < k; n++ {
				row := (c*k+m)*k + n
				base := row * cols
				// Padded positions read as zero; dst is zero-initialised, so
				// only in-bounds input elements are materialised. For the
				// unit-stride case each output row is one contiguous segment
				// of the input row, moved with a single copy.
				oxLo, oxHi := 0, outW
				if n < pad {
					oxLo = (pad - n + stride - 1) / stride
				}
				if hi := (w - 1 - n + pad) / stride; hi+1 < oxHi {
					oxHi = hi + 1
				}
				for oy := 0; oy < outH; oy++ {
					y := oy*stride + m - pad
					if y < 0 || y >= h {
						continue
					}
					irow := cmap[y*w : (y+1)*w]
					drow := dst[base+oy*outW : base+(oy+1)*outW]
					if stride == 1 {
						copy(drow[oxLo:oxHi], irow[oxLo+n-pad:])
					} else {
						for ox := oxLo; ox < oxHi; ox++ {
							drow[ox] = irow[ox*stride+n-pad]
						}
					}
				}
			}
		}
	}
	return out, nil
}

// MatMul computes C = A×B for row-major matrices A[m×k] and B[k×n].
func MatMul(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("nn: matmul needs rank-2 tensors, got %v x %v", a.Shape(), b.Shape())
	}
	m, ka := a.Dim(0), a.Dim(1)
	kb, n := b.Dim(0), b.Dim(1)
	if ka != kb {
		return nil, fmt.Errorf("nn: matmul inner dims %d vs %d", ka, kb)
	}
	out := tensor.New(m, n)
	ad, bd, cd := a.Data(), b.Data(), out.Data()
	// Row bands are independent, so they run on the bounded worker pool;
	// within a band the i/kk/j order (and therefore each element's
	// accumulation order over kk) is unchanged. The kk dimension is
	// additionally blocked so the touched rows of B stay cache-resident
	// across the band's output rows.
	const kkBlock = 256
	parallelFor(m, func(iLo, iHi int) {
		for kk0 := 0; kk0 < ka; kk0 += kkBlock {
			kk1 := kk0 + kkBlock
			if kk1 > ka {
				kk1 = ka
			}
			for i := iLo; i < iHi; i++ {
				arow := ad[i*ka : (i+1)*ka]
				crow := cd[i*n : (i+1)*n]
				for kk := kk0; kk < kk1; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					brow := bd[kk*n : (kk+1)*n]
					for j, bv := range brow {
						crow[j] += av * bv
					}
				}
			}
		}
	})
	return out, nil
}

// forwardConvGEMM evaluates a convolutional layer via im2col + GEMM: the
// weight tensor [F, C, K, K] is viewed as an F×(C·K·K) matrix and multiplied
// with the im2col matrix, matching the Caffeine formulation.
func forwardConvGEMM(l *Layer, in *tensor.Tensor, shape Shape) (*tensor.Tensor, error) {
	outShape, err := l.OutputShape(shape)
	if err != nil {
		return nil, err
	}
	cols, err := Im2Col(in, shape, l.Kernel, l.Stride, l.Pad)
	if err != nil {
		return nil, err
	}
	wmat := l.Weights.Reshape(outShape.Channels, shape.Channels*l.Kernel*l.Kernel)
	prod, err := MatMul(wmat, cols)
	if err != nil {
		return nil, err
	}
	out := prod.Reshape(outShape.Channels, outShape.Height, outShape.Width)
	if l.Bias != nil {
		data := out.Data()
		hw := outShape.Height * outShape.Width
		for f := 0; f < outShape.Channels; f++ {
			b := l.Bias.At(f)
			for p := 0; p < hw; p++ {
				data[f*hw+p] += b
			}
		}
	}
	return out, nil
}

// forwardFCGEMM evaluates a fully-connected layer as a GEMV (the 1×1 GEMM
// case of the unified representation).
func forwardFCGEMM(l *Layer, in *tensor.Tensor, shape Shape) (*tensor.Tensor, error) {
	x := in.Reshape(shape.Volume(), 1)
	prod, err := MatMul(l.Weights, x)
	if err != nil {
		return nil, err
	}
	out := prod.Reshape(l.OutputCount, 1, 1)
	if l.Bias != nil {
		data := out.Data()
		for o := range data {
			data[o] += l.Bias.At(o)
		}
	}
	return out, nil
}

// GEMMForward runs the whole network with the matrix-multiplication
// formulation (conv→im2col+GEMM, FC→GEMV; pooling and pointwise layers use
// the direct implementations). It is an independent oracle for the direct
// engine and the computational model of the baseline accelerator.
func (n *Network) GEMMForward(in *tensor.Tensor) (*tensor.Tensor, error) {
	if got, want := in.Shape(), n.Input; len(got) != 3 || got[0] != want.Channels || got[1] != want.Height || got[2] != want.Width {
		return nil, fmt.Errorf("nn: input shape %v, want %v", in.Shape(), want)
	}
	cur := in
	shape := n.Input
	for i, l := range n.Layers {
		var out *tensor.Tensor
		var err error
		switch l.Kind {
		case Conv:
			out, err = forwardConvGEMM(l, cur, shape)
		case FullyConnected:
			out, err = forwardFCGEMM(l, cur, shape)
		default:
			out, err = forwardLayer(l, cur, shape)
		}
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d (%s): %w", i, l.Name, err)
		}
		shape, err = l.OutputShape(shape)
		if err != nil {
			return nil, err
		}
		cur = out
	}
	return cur, nil
}

// Im2ColWords returns the size of the im2col matrix a layer expands to —
// the K²-fold input duplication the GEMM formulation pays in memory traffic
// (the cost the dataflow architecture's reuse buffers avoid).
func Im2ColWords(l *Layer, in Shape) int64 {
	out, err := l.OutputShape(in)
	if err != nil {
		return 0
	}
	return int64(in.Channels) * int64(l.Kernel) * int64(l.Kernel) *
		int64(out.Height) * int64(out.Width)
}
