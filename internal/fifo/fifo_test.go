package fifo

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPushPopOrder(t *testing.T) {
	f := New("t", 4)
	for i := 0; i < 4; i++ {
		f.Push(Word(i))
	}
	for i := 0; i < 4; i++ {
		v, ok := f.Pop()
		if !ok || v != Word(i) {
			t.Fatalf("pop %d = %v ok=%v", i, v, ok)
		}
	}
}

func TestPopAfterCloseDrains(t *testing.T) {
	f := New("t", 4)
	f.Push(1)
	f.Push(2)
	f.Close()
	if v, ok := f.Pop(); !ok || v != 1 {
		t.Fatal("first pop after close should return buffered word")
	}
	if v, ok := f.Pop(); !ok || v != 2 {
		t.Fatal("second pop after close should return buffered word")
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop after drain should report closed")
	}
}

func TestCloseIdempotent(t *testing.T) {
	f := New("t", 1)
	f.Close()
	f.Close() // must not panic
}

func TestPushBlocksWhenFull(t *testing.T) {
	f := New("t", 1)
	f.Push(1)
	done := make(chan struct{})
	go func() {
		f.Push(2) // blocks until a pop frees a slot
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("push to full FIFO did not block")
	case <-time.After(10 * time.Millisecond):
	}
	if v, _ := f.Pop(); v != 1 {
		t.Fatal("wrong word")
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("blocked push never completed")
	}
}

func TestPopBlocksWhenEmpty(t *testing.T) {
	f := New("t", 1)
	got := make(chan Word, 1)
	go func() {
		v, _ := f.Pop()
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("pop from empty FIFO did not block")
	case <-time.After(10 * time.Millisecond):
	}
	f.Push(9)
	select {
	case v := <-got:
		if v != 9 {
			t.Fatalf("pop = %v, want 9", v)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked pop never completed")
	}
}

func TestStats(t *testing.T) {
	f := New("stats", 8)
	for i := 0; i < 5; i++ {
		f.Push(Word(i))
	}
	for i := 0; i < 2; i++ {
		if v, ok := f.Pop(); !ok || v != Word(i) {
			t.Fatalf("pop %d = %v, %v", i, v, ok)
		}
	}
	s := f.Stats()
	if s.Name != "stats" || s.Depth != 8 {
		t.Fatalf("stats identity wrong: %+v", s)
	}
	if s.Pushes != 5 || s.Pops != 2 {
		t.Fatalf("pushes/pops = %d/%d", s.Pushes, s.Pops)
	}
	if s.MaxOccupancy != 5 {
		t.Fatalf("max occupancy = %d, want 5", s.MaxOccupancy)
	}
}

func TestMaxOccupancyNeverExceedsDepth(t *testing.T) {
	f := New("t", 3)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			f.Push(Word(i))
		}
		f.Close()
	}()
	go func() {
		defer wg.Done()
		for {
			if _, ok := f.Pop(); !ok {
				return
			}
		}
	}()
	wg.Wait()
	s := f.Stats()
	if s.MaxOccupancy > int64(s.Depth)+1 {
		// +1 tolerance: the high-water mark is sampled after the push races
		// with concurrent pops, so it can transiently over-count by one.
		t.Fatalf("max occupancy %d greatly exceeds depth %d", s.MaxOccupancy, s.Depth)
	}
	if s.Pushes != 1000 || s.Pops != 1000 {
		t.Fatalf("traffic counters %d/%d", s.Pushes, s.Pops)
	}
}

func TestDrain(t *testing.T) {
	f := New("t", 10)
	for i := 0; i < 7; i++ {
		f.Push(Word(i))
	}
	f.Close()
	if n := f.Drain(); n != 7 {
		t.Fatalf("drained %d, want 7", n)
	}
}

func TestZeroDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero depth")
		}
	}()
	New("bad", 0)
}

// Property: a single-producer single-consumer stream of any length passes
// through unchanged and in order, for any FIFO depth.
func TestFIFOOrderProperty(t *testing.T) {
	f := func(nRaw, depthRaw uint8) bool {
		n := int(nRaw)
		depth := int(depthRaw%16) + 1
		q := New("p", depth)
		go func() {
			for i := 0; i < n; i++ {
				q.Push(Word(i))
			}
			q.Close()
		}()
		for i := 0; i < n; i++ {
			v, ok := q.Pop()
			if !ok || v != Word(i) {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
