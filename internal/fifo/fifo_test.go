package fifo

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPushPopOrder(t *testing.T) {
	f := New("t", 4)
	for i := 0; i < 4; i++ {
		f.Push(Word(i))
	}
	for i := 0; i < 4; i++ {
		v, ok := f.Pop()
		if !ok || v != Word(i) {
			t.Fatalf("pop %d = %v ok=%v", i, v, ok)
		}
	}
}

func TestPopAfterCloseDrains(t *testing.T) {
	f := New("t", 4)
	f.Push(1)
	f.Push(2)
	f.Close()
	if v, ok := f.Pop(); !ok || v != 1 {
		t.Fatal("first pop after close should return buffered word")
	}
	if v, ok := f.Pop(); !ok || v != 2 {
		t.Fatal("second pop after close should return buffered word")
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop after drain should report closed")
	}
}

func TestCloseIdempotent(t *testing.T) {
	f := New("t", 1)
	f.Close()
	f.Close() // must not panic
}

func TestPushBlocksWhenFull(t *testing.T) {
	f := New("t", 1)
	f.Push(1)
	done := make(chan struct{})
	go func() {
		f.Push(2) // blocks until a pop frees a slot
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("push to full FIFO did not block")
	case <-time.After(10 * time.Millisecond):
	}
	if v, _ := f.Pop(); v != 1 {
		t.Fatal("wrong word")
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("blocked push never completed")
	}
}

func TestPopBlocksWhenEmpty(t *testing.T) {
	f := New("t", 1)
	got := make(chan Word, 1)
	go func() {
		v, _ := f.Pop()
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("pop from empty FIFO did not block")
	case <-time.After(10 * time.Millisecond):
	}
	f.Push(9)
	select {
	case v := <-got:
		if v != 9 {
			t.Fatalf("pop = %v, want 9", v)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked pop never completed")
	}
}

func TestStats(t *testing.T) {
	f := New("stats", 8)
	for i := 0; i < 5; i++ {
		f.Push(Word(i))
	}
	for i := 0; i < 2; i++ {
		if v, ok := f.Pop(); !ok || v != Word(i) {
			t.Fatalf("pop %d = %v, %v", i, v, ok)
		}
	}
	s := f.Stats()
	if s.Name != "stats" || s.Depth != 8 {
		t.Fatalf("stats identity wrong: %+v", s)
	}
	if s.Pushes != 5 || s.Pops != 2 {
		t.Fatalf("pushes/pops = %d/%d", s.Pushes, s.Pops)
	}
	if s.MaxOccupancy != 5 {
		t.Fatalf("max occupancy = %d, want 5", s.MaxOccupancy)
	}
}

func TestMaxOccupancyNeverExceedsDepth(t *testing.T) {
	f := New("t", 3)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			f.Push(Word(i))
		}
		f.Close()
	}()
	go func() {
		defer wg.Done()
		for {
			if _, ok := f.Pop(); !ok {
				return
			}
		}
	}()
	wg.Wait()
	s := f.Stats()
	if s.MaxOccupancy > int64(s.Depth)+1 {
		// +1 tolerance: the high-water mark is sampled after the push races
		// with concurrent pops, so it can transiently over-count by one.
		t.Fatalf("max occupancy %d greatly exceeds depth %d", s.MaxOccupancy, s.Depth)
	}
	if s.Pushes != 1000 || s.Pops != 1000 {
		t.Fatalf("traffic counters %d/%d", s.Pushes, s.Pops)
	}
}

func TestDrain(t *testing.T) {
	f := New("t", 10)
	for i := 0; i < 7; i++ {
		f.Push(Word(i))
	}
	f.Close()
	if n := f.Drain(); n != 7 {
		t.Fatalf("drained %d, want 7", n)
	}
}

func TestZeroDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero depth")
		}
	}()
	New("bad", 0)
}

func TestPushSliceLargerThanDepth(t *testing.T) {
	f := New("burst", 4)
	src := make([]Word, 19)
	for i := range src {
		src[i] = Word(i)
	}
	done := make(chan struct{})
	go func() {
		f.PushSlice(src)
		f.Close()
		close(done)
	}()
	for i := 0; i < len(src); i++ {
		v, ok := f.Pop()
		if !ok || v != Word(i) {
			t.Fatalf("pop %d = %v ok=%v", i, v, ok)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("stream should be closed after the burst")
	}
	<-done
}

// Burst wraparound: interleaved bursts that straddle the ring boundary must
// preserve order and content.
func TestBurstWraparound(t *testing.T) {
	f := New("wrap", 7) // deliberately not a power of two
	next := Word(0)
	buf := make([]Word, 5)
	for round := 0; round < 50; round++ {
		n := round%5 + 1
		chunk := make([]Word, n)
		for i := range chunk {
			chunk[i] = next + Word(i)
		}
		f.PushSlice(chunk)
		got := f.PopInto(buf[:n])
		if got != n {
			t.Fatalf("round %d: PopInto returned %d, want %d", round, got, n)
		}
		for i := 0; i < n; i++ {
			if buf[i] != next+Word(i) {
				t.Fatalf("round %d word %d: got %v, want %v", round, i, buf[i], next+Word(i))
			}
		}
		next += Word(n)
	}
}

// Close mid-burst: a blocked PopInto must return a short count once the
// producer closes with the burst only partially delivered.
func TestCloseMidBurst(t *testing.T) {
	f := New("mid", 8)
	got := make(chan int, 1)
	buf := make([]Word, 10)
	go func() {
		got <- f.PopInto(buf)
	}()
	f.PushSlice([]Word{1, 2, 3})
	f.Close()
	select {
	case n := <-got:
		if n != 3 {
			t.Fatalf("PopInto after close = %d, want 3", n)
		}
		for i, want := range []Word{1, 2, 3} {
			if buf[i] != want {
				t.Fatalf("buf[%d] = %v, want %v", i, buf[i], want)
			}
		}
	case <-time.After(time.Second):
		t.Fatal("PopInto never unblocked after close")
	}
}

func TestPopSliceBatches(t *testing.T) {
	f := New("batch", 16)
	f.PushSlice([]Word{1, 2, 3, 4, 5})
	buf := make([]Word, 3)
	n, ok := f.PopSlice(buf)
	if !ok || n != 3 || buf[0] != 1 || buf[2] != 3 {
		t.Fatalf("first PopSlice: n=%d ok=%v buf=%v", n, ok, buf)
	}
	n, ok = f.PopSlice(buf)
	if !ok || n != 2 || buf[0] != 4 || buf[1] != 5 {
		t.Fatalf("second PopSlice: n=%d ok=%v buf=%v", n, ok, buf)
	}
	f.Close()
	if n, ok = f.PopSlice(buf); ok || n != 0 {
		t.Fatalf("PopSlice after drain: n=%d ok=%v", n, ok)
	}
}

// Stats invariants: burst operations account exactly one push/pop per word
// moved, and the high-water mark reflects burst-boundary occupancy without
// ever exceeding the depth.
func TestBurstStatsInvariants(t *testing.T) {
	f := New("inv", 8)
	f.PushSlice(make([]Word, 6))
	s := f.Stats()
	if s.Pushes != 6 || s.Pops != 0 || s.MaxOccupancy != 6 {
		t.Fatalf("after burst push: %+v", s)
	}
	buf := make([]Word, 4)
	if n := f.PopInto(buf); n != 4 {
		t.Fatalf("PopInto = %d", n)
	}
	f.PushSlice(make([]Word, 5))
	s = f.Stats()
	if s.Pushes != 11 || s.Pops != 4 {
		t.Fatalf("counters after mixed traffic: %+v", s)
	}
	if s.MaxOccupancy != 7 {
		t.Fatalf("max occupancy = %d, want 7 (2 left + 5 burst)", s.MaxOccupancy)
	}
	if s.MaxOccupancy > int64(s.Depth) {
		t.Fatalf("occupancy %d exceeds depth %d", s.MaxOccupancy, s.Depth)
	}
}

// 1P1C bursts under the race detector: a producer pushing variable-size
// bursts and a consumer draining with variable-size PopInto see the exact
// word sequence, and the counters balance.
func TestBurstStream1P1C(t *testing.T) {
	const total = 10000
	f := New("stream", 13)
	go func() {
		i := 0
		for i < total {
			n := i%97 + 1
			if i+n > total {
				n = total - i
			}
			chunk := make([]Word, n)
			for j := range chunk {
				chunk[j] = Word(i + j)
			}
			f.PushSlice(chunk)
			i += n
		}
		f.Close()
	}()
	buf := make([]Word, 61)
	seen := 0
	for {
		n, ok := f.PopSlice(buf)
		for j := 0; j < n; j++ {
			if buf[j] != Word(seen+j) {
				t.Fatalf("word %d = %v", seen+j, buf[j])
			}
		}
		seen += n
		if !ok {
			break
		}
	}
	if seen != total {
		t.Fatalf("consumed %d of %d words", seen, total)
	}
	s := f.Stats()
	if s.Pushes != total || s.Pops != total {
		t.Fatalf("traffic counters %d/%d", s.Pushes, s.Pops)
	}
	if s.MaxOccupancy > int64(s.Depth) {
		t.Fatalf("occupancy %d exceeds depth %d", s.MaxOccupancy, s.Depth)
	}
}

func TestPushAfterClosePanics(t *testing.T) {
	f := New("closed", 2)
	f.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic pushing to a closed FIFO")
		}
	}()
	f.Push(1)
}

// Property: a single-producer single-consumer stream of any length passes
// through unchanged and in order, for any FIFO depth.
func TestFIFOOrderProperty(t *testing.T) {
	f := func(nRaw, depthRaw uint8) bool {
		n := int(nRaw)
		depth := int(depthRaw%16) + 1
		q := New("p", depth)
		go func() {
			for i := 0; i < n; i++ {
				q.Push(Word(i))
			}
			q.Close()
		}()
		for i := 0; i < n; i++ {
			v, ok := q.Pop()
			if !ok || v != Word(i) {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestResetReusesFIFO: a closed, drained FIFO can carry a second stream
// after Reset, with traffic counters accumulating across both passes.
func TestResetReusesFIFO(t *testing.T) {
	f := New("r", 4)
	for pass := 0; pass < 3; pass++ {
		go func() {
			f.PushSlice([]Word{1, 2, 3, 4, 5, 6})
			f.Close()
		}()
		var got []Word
		for {
			v, ok := f.Pop()
			if !ok {
				break
			}
			got = append(got, v)
		}
		if len(got) != 6 {
			t.Fatalf("pass %d: popped %d words, want 6", pass, len(got))
		}
		for i, v := range got {
			if v != Word(i+1) {
				t.Fatalf("pass %d word %d: got %v", pass, i, v)
			}
		}
		f.Reset()
	}
	if s := f.Stats(); s.Pushes != 18 || s.Pops != 18 {
		t.Fatalf("counters must accumulate across resets: %+v", s)
	}
}

// TestResetOpenPanics: resetting a FIFO that was never closed is a design
// bug and must panic.
func TestResetOpenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reset on an open FIFO did not panic")
		}
	}()
	New("open", 2).Reset()
}

// TestResetNonEmptyPanics: resetting a FIFO with words still buffered would
// silently leak stream data into the next pass.
func TestResetNonEmptyPanics(t *testing.T) {
	f := New("full", 4)
	f.Push(1)
	f.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with buffered words did not panic")
		}
	}()
	f.Reset()
}
