package fifo

import (
	"fmt"
	"math"
)

// Frame protocol: continuous-streaming sessions separate consecutive images
// on a stream edge with an epoch-tagged header word, so every element can
// verify it is consuming the image it thinks it is while frames from two
// adjacent epochs interleave inside the FIFO. The header is one Word whose
// high half is a magic pattern and whose low half carries the epoch counter
// (mod 2^16); activation payloads are IEEE-754 values that cannot collide
// with the magic because headers are only ever popped at frame boundaries,
// never searched for mid-stream.
//
// Header words are control traffic, not datapath traffic: they are counted
// in HeaderPushes/HeaderPops rather than Pushes/Pops, so the word totals of
// a framed streaming run stay bit-identical to the unframed word oracle. On
// the packed int8 datapath the epoch header precedes the per-image scale
// word from the quantized frame layout; the scale word remains an ordinary
// datapath push for compatibility with that layout.

// frameMagic marks a Word as a frame header; the low 16 bits carry the
// epoch. The pattern is a quiet-NaN-free exponent region that real
// activations can also produce, which is fine: headers are positional.
const frameMagic = uint32(0xC0DE0000)

// EncodeFrameHeader builds the header word for an epoch.
func EncodeFrameHeader(epoch uint16) Word {
	return math.Float32frombits(frameMagic | uint32(epoch))
}

// DecodeFrameHeader extracts the epoch from a header word; ok=false means
// the word does not carry the frame-header magic.
func DecodeFrameHeader(w Word) (uint16, bool) {
	bits := math.Float32bits(w)
	if bits&0xFFFF0000 != frameMagic {
		return 0, false
	}
	return uint16(bits & 0xFFFF), true
}

// PushFrameHeader appends the epoch header word, blocking while the FIFO is
// full. The word is accounted as control traffic (HeaderPushes) and marks an
// epoch boundary for per-epoch occupancy tracking; the datapath counters are
// untouched. Pushing to a closed FIFO panics, like Push.
func (f *FIFO) PushFrameHeader(epoch uint16) {
	w := EncodeFrameHeader(epoch)
	f.mu.Lock()
	for f.count == len(f.buf) && !f.closed {
		f.notFull.Wait()
	}
	if f.closed {
		f.mu.Unlock()
		panic(fmt.Sprintf("fifo %q: push after close", f.name))
	}
	f.markEpochLocked()
	tail := f.head + f.count
	if tail >= len(f.buf) {
		tail -= len(f.buf)
	}
	f.buf[tail] = w
	f.count++
	f.headerPushes++
	if occ := int64(f.count); occ > f.maxOcc {
		f.maxOcc = occ
	}
	if occ := int64(f.count); occ > f.epochOcc {
		f.epochOcc = occ
	}
	f.notEmpty.Broadcast()
	f.mu.Unlock()
}

// PopFrameHeader removes the word at the head of the FIFO and decodes it as
// a frame header. It blocks while the FIFO is empty; ok=false marks
// end-of-stream (closed and drained), the way a resident element learns its
// session is over. A non-header word at a frame boundary is a protocol
// violation and is returned as an error with the word left consumed.
func (f *FIFO) PopFrameHeader() (epoch uint16, ok bool, err error) {
	f.mu.Lock()
	for f.count == 0 && !f.closed {
		f.notEmpty.Wait()
	}
	if f.count == 0 {
		f.mu.Unlock()
		return 0, false, nil
	}
	w := f.buf[f.head]
	f.head++
	if f.head >= len(f.buf) {
		f.head -= len(f.buf)
	}
	f.count--
	f.headerPops++
	f.notFull.Broadcast()
	f.mu.Unlock()
	e, valid := DecodeFrameHeader(w)
	if !valid {
		return 0, true, fmt.Errorf("fifo %q: word %v at frame boundary is not a frame header", f.name, w)
	}
	return e, true, nil
}

// markEpochLocked closes the current per-epoch occupancy window and opens
// the next: the window's high-water mark folds into the across-epochs
// maximum, and the new window starts at the current occupancy (the previous
// epoch's unconsumed tail — exactly the interleaving CND024 bounds).
func (f *FIFO) markEpochLocked() {
	if f.epochs > 0 && f.epochOcc > f.epochMaxOcc {
		f.epochMaxOcc = f.epochOcc
	}
	f.epochs++
	f.epochOcc = int64(f.count)
}

// MarkEpoch records an epoch boundary without transferring a word, for
// callers that frame out-of-band (tests, custom protocols).
func (f *FIFO) MarkEpoch() {
	f.mu.Lock()
	f.markEpochLocked()
	f.mu.Unlock()
}
