package fifo

import "math"

// Packed-lane transfers: the fixed-point fabric keeps the FIFO word 32 bits
// wide (Word stays the ring-buffer currency) but packs Int8Lanes int8
// activation lanes into each word's bit pattern, quadrupling the effective
// stream bandwidth — the Qiu-style bandwidth optimisation the quantized
// datapath is built on. Pack/Unpack move lanes through math.Float32bits
// punning: pure bit moves, never float arithmetic, so every lane pattern
// (including ones whose word aliases a NaN encoding) round-trips losslessly.

// Int8Lanes is the number of int8 lanes packed into one 32-bit FIFO word.
const Int8Lanes = 4

// PackedWords returns the number of 32-bit words needed to carry n int8
// lanes (the tail word is zero-padded when Int8Lanes does not divide n).
func PackedWords(n int) int { return (n + Int8Lanes - 1) / Int8Lanes }

// PackInt8 packs src into dst, Int8Lanes lanes per word, little-lane-first;
// tail lanes of the final word are zero. dst must hold PackedWords(len(src))
// words; the words written are returned.
func PackInt8(dst []Word, src []int8) int {
	words := PackedWords(len(src))
	_ = dst[:words]
	i := 0
	for w := 0; w < words; w++ {
		var u uint32
		for l := 0; l < Int8Lanes && i < len(src); l++ {
			u |= uint32(uint8(src[i])) << (8 * l)
			i++
		}
		dst[w] = math.Float32frombits(u)
	}
	return words
}

// UnpackInt8 unpacks len(dst) lanes from the packed words in src (the
// inverse of PackInt8; padded tail lanes are simply never read).
func UnpackInt8(dst []int8, src []Word) {
	for i := range dst {
		u := math.Float32bits(src[i/Int8Lanes])
		dst[i] = int8(u >> (8 * (i % Int8Lanes)))
	}
}

// PushPacked pushes a burst of packed words carrying the given number of
// int8 lanes, accounting the per-lane traffic counters alongside the word
// counters PushSlice advances. Framing words that carry no lanes (per-image
// scale headers) are pushed with lanes=0.
func (f *FIFO) PushPacked(vs []Word, lanes int64) {
	f.PushSlice(vs)
	f.mu.Lock()
	f.lanePushes += lanes
	f.mu.Unlock()
}

// PopPackedInto fills dst with packed words (blocking like PopInto) and
// accounts the given lane count on the pop side. It returns the number of
// words read; a short count means the stream closed mid-frame.
func (f *FIFO) PopPackedInto(dst []Word, lanes int64) int {
	n := f.PopInto(dst)
	if n < len(dst) {
		// Truncated frame: scale the lane accounting to the words that
		// actually arrived so pushes and pops still reconcile on teardown.
		lanes = lanes * int64(n) / int64(len(dst))
	}
	f.mu.Lock()
	f.lanePops += lanes
	f.mu.Unlock()
	return n
}
