package fifo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPackedWords(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 3: 1, 4: 1, 5: 2, 8: 2, 9: 3, 256: 64, 10: 3}
	for n, want := range cases {
		if got := PackedWords(n); got != want {
			t.Errorf("PackedWords(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: pack-then-unpack is the identity on every int8 lane pattern, at
// every length (including tails Int8Lanes does not divide). This must hold
// bit-exactly because the fabric's payload integrity depends on the float32
// word type never normalising or quieting the punned bit patterns.
func TestPackUnpackLosslessProperty(t *testing.T) {
	f := func(src []int8) bool {
		words := make([]Word, PackedWords(len(src)))
		if n := PackInt8(words, src); n != len(words) {
			return false
		}
		got := make([]int8, len(src))
		UnpackInt8(got, words)
		for i := range src {
			if got[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The adversarial lane patterns: words whose bit images alias float32 NaN
// and infinity encodings. A payload of 0x7F,0xC0,0x80,0xFF packs to
// 0xFF80C07F — a signalling-NaN bit pattern — and any arithmetic or
// load-through-float-register normalisation would quiet it (flipping a lane
// bit). The FIFO only ever copies words, so the pattern must survive.
func TestPackUnpackNaNAliasedLanes(t *testing.T) {
	patterns := [][]int8{
		{0x7F, -0x40, -0x80, -0x01},            // 0xFF80C07F: signalling NaN
		{0x00, 0x00, -0x80, 0x7F},              // 0x7F800000: +Inf
		{0x00, 0x00, -0x80, -0x01},             // 0xFF800000: -Inf
		{-0x01, -0x01, -0x01, -0x01},           // 0xFFFFFFFF: quiet NaN, all bits
		{0x01, 0x00, -0x80, 0x7F, 0x55, -0x56}, // NaN word + ragged tail
	}
	for _, src := range patterns {
		words := make([]Word, PackedWords(len(src)))
		PackInt8(words, src)
		got := make([]int8, len(src))
		UnpackInt8(got, words)
		for i := range src {
			if got[i] != src[i] {
				t.Fatalf("pattern %v lane %d: got %d, want %d (word bits %#x)",
					src, i, got[i], src[i], math.Float32bits(float32(words[i/Int8Lanes])))
			}
		}
	}
}

// Packed transfers must traverse a FIFO unchanged and advance the lane
// counters; plain word transfers must leave them at zero.
func TestPackedTransferLaneCounters(t *testing.T) {
	f := New("pk", 4)
	src := make([]int8, 11)
	for i := range src {
		src[i] = int8(i*17 - 80)
	}
	words := make([]Word, PackedWords(len(src)))
	PackInt8(words, src)

	done := make(chan []int8)
	go func() {
		buf := make([]Word, len(words))
		if n := f.PopPackedInto(buf, int64(len(src))); n != len(buf) {
			done <- nil
			return
		}
		out := make([]int8, len(src))
		UnpackInt8(out, buf)
		done <- out
	}()
	f.PushPacked(words, int64(len(src)))
	got := <-done
	if got == nil {
		t.Fatal("packed frame truncated")
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("lane %d: got %d, want %d", i, got[i], src[i])
		}
	}
	st := f.Stats()
	if st.LanePushes != int64(len(src)) || st.LanePops != int64(len(src)) {
		t.Fatalf("lane counters %d/%d, want %d/%d", st.LanePushes, st.LanePops, len(src), len(src))
	}
	if st.Pushes != int64(len(words)) || st.Pops != int64(len(words)) {
		t.Fatalf("word counters %d/%d, want %d/%d", st.Pushes, st.Pops, len(words), len(words))
	}

	// A header word pushed the plain way carries no lanes. Depth 2 means
	// the single push never blocks, so no producer goroutine is needed.
	g := New("hdr", 2)
	g.Push(1.5)
	if v, ok := g.Pop(); !ok || v != 1.5 {
		t.Fatalf("header word round-trip: got %v (ok=%v), want 1.5", v, ok)
	}
	if st := g.Stats(); st.LanePushes != 0 || st.LanePops != 0 {
		t.Fatalf("plain transfer advanced lane counters: %+v", st)
	}
}
