package fifo

import (
	"math"
	"testing"
)

// TestFrameHeaderRoundTrip: every epoch survives encode/decode, and plain
// words do not decode as headers.
func TestFrameHeaderRoundTrip(t *testing.T) {
	for _, e := range []uint16{0, 1, 255, 256, 0x7FFF, 0xFFFF} {
		w := EncodeFrameHeader(e)
		got, ok := DecodeFrameHeader(w)
		if !ok || got != e {
			t.Fatalf("epoch %d: decode returned (%d, %v)", e, got, ok)
		}
	}
	for _, w := range []Word{0, 1, -1, 3.75, float32(math.Inf(1))} {
		if _, ok := DecodeFrameHeader(w); ok {
			t.Fatalf("plain word %v decoded as a frame header", w)
		}
	}
}

// TestFrameHeaderCounters: header words travel through the FIFO but are
// accounted apart from the datapath word totals.
func TestFrameHeaderCounters(t *testing.T) {
	f := New("hdr", 8)
	f.PushFrameHeader(0)
	f.PushSlice([]Word{1, 2, 3})
	f.PushFrameHeader(1)
	f.Push(4)
	f.Close()

	e, ok, err := f.PopFrameHeader()
	if err != nil || !ok || e != 0 {
		t.Fatalf("first header: (%d, %v, %v)", e, ok, err)
	}
	var buf [3]Word
	if n := f.PopInto(buf[:]); n != 3 {
		t.Fatalf("payload PopInto returned %d words", n)
	}
	e, ok, err = f.PopFrameHeader()
	if err != nil || !ok || e != 1 {
		t.Fatalf("second header: (%d, %v, %v)", e, ok, err)
	}
	if v, ok := f.Pop(); !ok || v != 4 {
		t.Fatalf("payload Pop returned (%v, %v)", v, ok)
	}
	if _, ok, _ := f.PopFrameHeader(); ok {
		t.Fatal("PopFrameHeader on a drained closed FIFO reported a word")
	}

	s := f.Stats()
	if s.Pushes != 4 || s.Pops != 4 {
		t.Fatalf("datapath words: %d pushed / %d popped, want 4/4", s.Pushes, s.Pops)
	}
	if s.HeaderPushes != 2 || s.HeaderPops != 2 {
		t.Fatalf("header words: %d pushed / %d popped, want 2/2", s.HeaderPushes, s.HeaderPops)
	}
}

// TestPopFrameHeaderProtocolError: a datapath word at a frame boundary is a
// protocol violation, reported as an error with the word consumed.
func TestPopFrameHeaderProtocolError(t *testing.T) {
	f := New("bad", 4)
	f.Push(7)
	if _, ok, err := f.PopFrameHeader(); !ok || err == nil {
		t.Fatalf("non-header word at boundary: ok=%v err=%v", ok, err)
	}
	if s := f.Stats(); s.HeaderPops != 1 {
		t.Fatalf("violating word not consumed as a header pop: %+v", s)
	}
}

// TestEpochOccupancyWindows: MaxOccupancy spans the whole stream while
// EpochMaxOccupancy is windowed at frame boundaries, so a transient spike in
// one epoch does not pollute the steady-state figure of later epochs — and
// with no boundary ever marked the windowed figure stays zero.
func TestEpochOccupancyWindows(t *testing.T) {
	f := New("occ", 16)
	f.PushSlice([]Word{1, 2, 3, 4, 5})
	if s := f.Stats(); s.EpochMaxOccupancy != 0 {
		t.Fatalf("unframed stream has EpochMaxOccupancy %d, want 0", s.EpochMaxOccupancy)
	}
	var buf [5]Word
	f.PopInto(buf[:])

	mustPop := func() {
		if _, ok := f.Pop(); !ok {
			t.Fatal("Pop hit end-of-stream mid-test")
		}
	}
	// Epoch 0: spike to 7 buffered words (header + 6), fully drained.
	f.PushFrameHeader(0)
	f.PushSlice([]Word{1, 2, 3, 4, 5, 6})
	f.PopFrameHeader()
	f.PopInto(buf[:])
	mustPop()
	// Epoch 1: never more than 3 resident (header + 2).
	f.PushFrameHeader(1)
	f.PushSlice([]Word{1, 2})
	f.PopFrameHeader()
	mustPop()
	mustPop()
	// Epoch 2 opens: its window starts at the current (empty) occupancy.
	f.PushFrameHeader(2)
	f.PushSlice([]Word{1})

	s := f.Stats()
	if s.MaxOccupancy != 7 {
		t.Fatalf("MaxOccupancy %d, want 7", s.MaxOccupancy)
	}
	if s.EpochMaxOccupancy != 7 {
		t.Fatalf("EpochMaxOccupancy %d, want 7 (epoch 0's window)", s.EpochMaxOccupancy)
	}
}

// TestResetStats: counters zero, contents and state survive.
func TestResetStats(t *testing.T) {
	f := New("rs", 8)
	f.PushFrameHeader(0)
	f.PushSlice([]Word{1, 2, 3})
	f.ResetStats()
	s := f.Stats()
	if s.Pushes != 0 || s.PushBursts != 0 || s.MaxOccupancy != 0 ||
		s.HeaderPushes != 0 || s.EpochMaxOccupancy != 0 || s.LanePushes != 0 {
		t.Fatalf("counters not cleared: %+v", s)
	}
	// Contents are untouched: the header and payload are still there.
	if e, ok, err := f.PopFrameHeader(); e != 0 || !ok || err != nil {
		t.Fatalf("header lost across ResetStats: (%d, %v, %v)", e, ok, err)
	}
	var buf [3]Word
	if n := f.PopInto(buf[:]); n != 3 || buf[0] != 1 || buf[2] != 3 {
		t.Fatalf("payload lost across ResetStats: n=%d buf=%v", n, buf)
	}
}

// TestMarkEpochOutOfBand: MarkEpoch windows occupancy without moving words.
func TestMarkEpochOutOfBand(t *testing.T) {
	f := New("mark", 8)
	f.MarkEpoch()
	f.PushSlice([]Word{1, 2, 3, 4})
	var buf [4]Word
	f.PopInto(buf[:])
	f.MarkEpoch()
	f.Push(9)
	if s := f.Stats(); s.EpochMaxOccupancy != 4 {
		t.Fatalf("EpochMaxOccupancy %d, want 4", s.EpochMaxOccupancy)
	}
	if s := f.Stats(); s.HeaderPushes != 0 || s.Pushes != 5 {
		t.Fatalf("MarkEpoch moved words: %+v", s)
	}
}
