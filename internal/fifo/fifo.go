// Package fifo provides the bounded blocking FIFO channel that the Condor
// accelerator fabric is built from. The paper's architecture is "a
// distributed dataflow architecture of simple and independent elements
// communicating over FIFOs ... using blocking reads and writes"; this
// package is that primitive, instrumented with the occupancy statistics the
// resource model uses to size on-chip buffers.
//
// The implementation is a mutex+condvar ring buffer rather than a Go
// channel: alongside the word-granularity Push/Pop of the hardware model it
// exposes burst transfers (PushSlice, PopSlice, PopInto) that move many
// words per synchronisation, the way Caffeine-class accelerators batch
// their DDR traffic. Bursts are a host-simulation optimisation only — the
// traffic counters advance by exactly the same totals as the equivalent
// word-at-a-time sequence, so the modeled quantities are unchanged.
package fifo

import (
	"fmt"
	"sync"
)

// Word is the data type carried by fabric FIFOs: single-precision floating
// point, the numeric format of the paper's accelerator.
type Word = float32

// FIFO is a bounded, blocking, closeable queue of Words. Push blocks while
// the FIFO is full; Pop blocks while it is empty and no writer has closed
// it. It is safe for concurrent producers and consumers, though the fabric
// uses it point-to-point (one producer, one consumer).
type FIFO struct {
	name string

	mu       sync.Mutex
	notEmpty sync.Cond // signalled when words arrive or the FIFO closes
	notFull  sync.Cond // signalled when space frees or the FIFO closes

	buf    []Word // ring storage, len(buf) == depth
	head   int    // index of the oldest word
	count  int    // words currently buffered
	closed bool

	// Traffic counters, guarded by mu. Burst operations account once per
	// burst chunk; the word totals equal the word-at-a-time sequence
	// exactly, while the burst counters record how many synchronisations
	// carried them (the quantity the observability layer reports as
	// words-per-burst efficiency).
	pushes     int64
	pops       int64
	pushBursts int64
	popBursts  int64
	maxOcc     int64 // high-water mark, observed at burst boundaries

	// Frame-protocol counters (frame.go): header words are control traffic
	// and are kept apart from the datapath word totals so framed streaming
	// runs stay word-identical to the unframed oracle.
	headerPushes int64
	headerPops   int64

	// Per-epoch occupancy: epochOcc is the high-water mark of the window
	// since the last epoch boundary; epochMaxOcc the maximum over completed
	// windows; epochs the number of boundaries observed. Steady-state
	// sessions read EpochMaxOccupancy to separate the pipeline-fill
	// transient from the per-image occupancy that buffer sizing needs.
	epochOcc    int64
	epochMaxOcc int64
	epochs      int64

	// Lane counters, advanced only by the packed transfers (packed.go): the
	// int8 elements carried inside the words counted above. Zero on the
	// float32 datapath, where word == element.
	lanePushes int64
	lanePops   int64
}

// New creates a FIFO with the given capacity (depth in words). Depth must be
// at least 1, matching hardware FIFOs which always have at least one slot.
func New(name string, depth int) *FIFO {
	if depth < 1 {
		panic(fmt.Sprintf("fifo %q: depth %d < 1", name, depth))
	}
	f := &FIFO{name: name, buf: make([]Word, depth)}
	f.notEmpty.L = &f.mu
	f.notFull.L = &f.mu
	return f
}

// Name returns the FIFO's identifier (used in fabric netlists and stats).
func (f *FIFO) Name() string { return f.name }

// Depth returns the FIFO capacity in words.
func (f *FIFO) Depth() int { return len(f.buf) }

// enqueueLocked copies vs (which must fit) into the ring and accounts the
// burst. Callers hold mu and have ensured space.
func (f *FIFO) enqueueLocked(vs []Word) {
	tail := f.head + f.count
	if tail >= len(f.buf) {
		tail -= len(f.buf)
	}
	n := copy(f.buf[tail:], vs)
	copy(f.buf, vs[n:])
	f.count += len(vs)
	f.pushes += int64(len(vs))
	f.pushBursts++
	if occ := int64(f.count); occ > f.maxOcc {
		f.maxOcc = occ
	}
	if occ := int64(f.count); occ > f.epochOcc {
		f.epochOcc = occ
	}
}

// dequeueLocked moves up to len(dst) buffered words into dst and accounts
// the burst; it returns the number moved. Callers hold mu.
func (f *FIFO) dequeueLocked(dst []Word) int {
	n := len(dst)
	if n > f.count {
		n = f.count
	}
	if n == 0 {
		return 0
	}
	first := copy(dst[:n], f.buf[f.head:])
	copy(dst[first:n], f.buf)
	f.head += n
	if f.head >= len(f.buf) {
		f.head -= len(f.buf)
	}
	f.count -= n
	f.pops += int64(n)
	f.popBursts++
	return n
}

// Push appends v, blocking while the FIFO is full. Pushing to a closed FIFO
// panics, as writing to a hardware FIFO after end-of-stream is a design bug.
func (f *FIFO) Push(v Word) {
	f.mu.Lock()
	for f.count == len(f.buf) && !f.closed {
		f.notFull.Wait()
	}
	if f.closed {
		f.mu.Unlock()
		panic(fmt.Sprintf("fifo %q: push after close", f.name))
	}
	var one [1]Word
	one[0] = v
	f.enqueueLocked(one[:])
	f.notEmpty.Broadcast()
	f.mu.Unlock()
}

// PushSlice appends every word of vs in order, blocking as needed. The burst
// is split into chunks no larger than the free space, so vs may exceed the
// FIFO depth; each chunk advances the traffic counters once. vs is copied —
// the caller may reuse it immediately. Pushing to a closed FIFO panics.
func (f *FIFO) PushSlice(vs []Word) {
	for len(vs) > 0 {
		f.mu.Lock()
		for f.count == len(f.buf) && !f.closed {
			f.notFull.Wait()
		}
		if f.closed {
			f.mu.Unlock()
			panic(fmt.Sprintf("fifo %q: push after close", f.name))
		}
		n := len(f.buf) - f.count
		if n > len(vs) {
			n = len(vs)
		}
		f.enqueueLocked(vs[:n])
		f.notEmpty.Broadcast()
		f.mu.Unlock()
		vs = vs[n:]
	}
}

// Pop removes and returns the oldest word. It blocks while the FIFO is
// empty; once the FIFO is closed and drained it returns ok=false.
func (f *FIFO) Pop() (Word, bool) {
	f.mu.Lock()
	for f.count == 0 && !f.closed {
		f.notEmpty.Wait()
	}
	var one [1]Word
	if f.dequeueLocked(one[:]) == 0 {
		f.mu.Unlock()
		return 0, false
	}
	f.notFull.Broadcast()
	f.mu.Unlock()
	return one[0], true
}

// PopSlice removes up to len(dst) words in one burst: it blocks until at
// least one word is available (or the FIFO is closed and drained), then
// moves everything currently buffered, up to len(dst). It returns the
// number of words written to dst; ok=false marks end-of-stream (closed and
// empty, n == 0).
func (f *FIFO) PopSlice(dst []Word) (int, bool) {
	if len(dst) == 0 {
		return 0, true
	}
	f.mu.Lock()
	for f.count == 0 && !f.closed {
		f.notEmpty.Wait()
	}
	n := f.dequeueLocked(dst)
	if n == 0 {
		f.mu.Unlock()
		return 0, false
	}
	f.notFull.Broadcast()
	f.mu.Unlock()
	return n, true
}

// PopInto fills dst completely, blocking for more words as needed, and
// returns the number of words written. A short count (< len(dst)) means the
// FIFO was closed and drained before the burst completed.
func (f *FIFO) PopInto(dst []Word) int {
	filled := 0
	for filled < len(dst) {
		n, ok := f.PopSlice(dst[filled:])
		filled += n
		if !ok {
			break
		}
	}
	return filled
}

// Reset returns a closed, fully drained FIFO to its ready state so the
// fabric can stream another map through the same physical FIFO — the way a
// hardware FIFO is reused across channel passes — instead of instantiating
// a fresh one per pass. Only a finished stream may be reset: resetting a
// FIFO that is still open, or that still buffers words, is a design bug and
// panics. Reset touches contents only — traffic counters keep accumulating
// across the passes the FIFO carries, so per-session occupancy accounting
// survives multi-epoch reuse; a caller that wants fresh counters calls
// ResetStats explicitly.
func (f *FIFO) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.closed {
		panic(fmt.Sprintf("fifo %q: reset of an open FIFO", f.name))
	}
	if f.count != 0 {
		panic(fmt.Sprintf("fifo %q: reset with %d words still buffered", f.name, f.count))
	}
	f.closed = false
	f.head = 0
}

// ResetStats zeroes every traffic counter — words, bursts, lanes, headers,
// occupancy high-water marks and epoch windows — without touching the
// FIFO's contents or open/closed state. Sessions that reuse a fabric across
// measurement intervals call it between intervals.
func (f *FIFO) ResetStats() {
	f.mu.Lock()
	f.pushes, f.pops = 0, 0
	f.pushBursts, f.popBursts = 0, 0
	f.maxOcc = 0
	f.lanePushes, f.lanePops = 0, 0
	f.headerPushes, f.headerPops = 0, 0
	f.epochOcc, f.epochMaxOcc, f.epochs = 0, 0, 0
	f.mu.Unlock()
}

// Close marks end-of-stream. Subsequent Pops drain remaining words and then
// report ok=false. Close is idempotent.
func (f *FIFO) Close() {
	f.mu.Lock()
	f.closed = true
	f.notEmpty.Broadcast()
	f.notFull.Broadcast()
	f.mu.Unlock()
}

// Stats is a snapshot of FIFO traffic counters. Pushes/Pops count words and
// are datapath-invariant; PushBursts/PopBursts count the synchronisations
// that carried them (equal to the word counts on the word-at-a-time path,
// far smaller on the burst path).
type Stats struct {
	Name         string
	Depth        int
	Pushes       int64
	Pops         int64
	PushBursts   int64
	PopBursts    int64
	MaxOccupancy int64

	// LanePushes/LanePops count the int8 lanes carried inside packed words
	// (PushPacked/PopPackedInto). Zero on the float32 datapath.
	LanePushes int64
	LanePops   int64

	// HeaderPushes/HeaderPops count epoch frame-header words
	// (PushFrameHeader/PopFrameHeader), kept apart from Pushes/Pops so the
	// datapath word totals stay oracle-identical under framing. Zero on
	// unframed runs.
	HeaderPushes int64
	HeaderPops   int64

	// EpochMaxOccupancy is the largest per-epoch occupancy high-water mark:
	// the maximum, over epoch windows (frame boundaries), of the buffered
	// word count within that window. Unlike MaxOccupancy it excludes nothing
	// numerically — it differs only in being windowed, so a steady-state
	// session can tell the fill transient from the recurring per-image
	// occupancy. Zero when no epoch boundary was ever marked.
	EpochMaxOccupancy int64
}

// Stats returns the current traffic counters. MaxOccupancy is a high-water
// mark observed at burst boundaries: the largest buffered word count right
// after a push burst landed, which is the quantity buffer sizing needs.
func (f *FIFO) Stats() Stats {
	f.mu.Lock()
	s := Stats{
		Name:         f.name,
		Depth:        len(f.buf),
		Pushes:       f.pushes,
		Pops:         f.pops,
		PushBursts:   f.pushBursts,
		PopBursts:    f.popBursts,
		MaxOccupancy: f.maxOcc,
		LanePushes:   f.lanePushes,
		LanePops:     f.lanePops,
		HeaderPushes: f.headerPushes,
		HeaderPops:   f.headerPops,
	}
	if f.epochs > 0 {
		s.EpochMaxOccupancy = f.epochMaxOcc
		if f.epochOcc > s.EpochMaxOccupancy {
			s.EpochMaxOccupancy = f.epochOcc // current, still-open window
		}
	}
	f.mu.Unlock()
	return s
}

// Drain pops until the FIFO is closed and empty, returning the number of
// words discarded. Used by teardown paths and tests.
func (f *FIFO) Drain() int {
	var scratch [256]Word
	total := 0
	for {
		n, ok := f.PopSlice(scratch[:])
		total += n
		if !ok {
			return total
		}
	}
}
