// Package fifo provides the bounded blocking FIFO channel that the Condor
// accelerator fabric is built from. The paper's architecture is "a
// distributed dataflow architecture of simple and independent elements
// communicating over FIFOs ... using blocking reads and writes"; this
// package is that primitive, instrumented with the occupancy statistics the
// resource model uses to size on-chip buffers.
package fifo

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Word is the data type carried by fabric FIFOs: single-precision floating
// point, the numeric format of the paper's accelerator.
type Word = float32

// FIFO is a bounded, blocking, closeable queue of Words. Push blocks while
// the FIFO is full; Pop blocks while it is empty and no writer has closed
// it. It is safe for one producer and one consumer goroutine (the fabric's
// point-to-point channels); multiple producers must coordinate externally.
type FIFO struct {
	name string
	ch   chan Word

	pushes atomic.Int64
	pops   atomic.Int64
	maxOcc atomic.Int64

	closeOnce sync.Once
}

// New creates a FIFO with the given capacity (depth in words). Depth must be
// at least 1, matching hardware FIFOs which always have at least one slot.
func New(name string, depth int) *FIFO {
	if depth < 1 {
		panic(fmt.Sprintf("fifo %q: depth %d < 1", name, depth))
	}
	return &FIFO{name: name, ch: make(chan Word, depth)}
}

// Name returns the FIFO's identifier (used in fabric netlists and stats).
func (f *FIFO) Name() string { return f.name }

// Depth returns the FIFO capacity in words.
func (f *FIFO) Depth() int { return cap(f.ch) }

// Push appends v, blocking while the FIFO is full. Pushing to a closed FIFO
// panics, as writing to a hardware FIFO after end-of-stream is a design bug.
func (f *FIFO) Push(v Word) {
	f.ch <- v
	n := f.pushes.Add(1) - f.pops.Load()
	for {
		cur := f.maxOcc.Load()
		if n <= cur || f.maxOcc.CompareAndSwap(cur, n) {
			break
		}
	}
}

// Pop removes and returns the oldest word. It blocks while the FIFO is
// empty; once the FIFO is closed and drained it returns ok=false.
func (f *FIFO) Pop() (Word, bool) {
	v, ok := <-f.ch
	if ok {
		f.pops.Add(1)
	}
	return v, ok
}

// Close marks end-of-stream. Subsequent Pops drain remaining words and then
// report ok=false. Close is idempotent.
func (f *FIFO) Close() {
	f.closeOnce.Do(func() { close(f.ch) })
}

// Stats is a snapshot of FIFO traffic counters.
type Stats struct {
	Name         string
	Depth        int
	Pushes       int64
	Pops         int64
	MaxOccupancy int64
}

// Stats returns the current traffic counters. MaxOccupancy is a high-water
// mark observed at push time; under concurrent producers/consumers it is an
// upper-bound estimate, which is the quantity buffer sizing needs.
func (f *FIFO) Stats() Stats {
	return Stats{
		Name:         f.name,
		Depth:        cap(f.ch),
		Pushes:       f.pushes.Load(),
		Pops:         f.pops.Load(),
		MaxOccupancy: f.maxOcc.Load(),
	}
}

// Drain pops until the FIFO is closed and empty, returning the number of
// words discarded. Used by teardown paths and tests.
func (f *FIFO) Drain() int {
	n := 0
	for {
		if _, ok := f.Pop(); !ok {
			return n
		}
		n++
	}
}
