package condor

import (
	"testing"

	"condor/internal/models"
	"condor/internal/quant"
)

func TestCosimTC1Passes(t *testing.T) {
	b, err := New().BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Cosim(6, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("co-simulation failed: %+v", rep)
	}
	if rep.MaxAbsDiff > rep.Tolerance {
		t.Fatalf("max diff %v over tolerance", rep.MaxAbsDiff)
	}
	if rep.ArgMaxAgreement != 1 {
		t.Fatalf("argmax agreement %v", rep.ArgMaxAgreement)
	}
	if rep.ModelCycles != rep.MeasuredCycles {
		t.Fatalf("cycle model %d vs measured %d", rep.ModelCycles, rep.MeasuredCycles)
	}
}

func TestCosimLeNetViaCaffe(t *testing.T) {
	blob, err := models.LeNetCaffeModel(11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().BuildAccelerator(Input{
		Prototxt: models.LeNetPrototxt, CaffeModel: blob,
		Board: "aws-f1-vu9p", FrequencyMHz: 180,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Cosim(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("LeNet co-simulation failed: %+v", rep)
	}
}

func TestCosimQuantizedBuild(t *testing.T) {
	in := tc1Input(t)
	in.Precision = quant.Int16
	b, err := New().BuildAccelerator(in)
	if err != nil {
		t.Fatal(err)
	}
	// The fabric runs on the quantized weights, and so does the reference
	// inside Cosim (both use b.Weights), so the run must still pass.
	rep, err := b.Cosim(4, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("quantized co-simulation failed: %+v", rep)
	}
}

func TestCosimDetectsImpossibleTolerance(t *testing.T) {
	b, err := New().BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Cosim(4, 4, 1e-12) // below float32 reassociation noise
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches == 0 {
		t.Fatal("sub-epsilon tolerance should report mismatches")
	}
	if rep.Passed() {
		t.Fatal("report must not pass with mismatches")
	}
}

func TestCosimInputValidation(t *testing.T) {
	b, err := New().BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Cosim(0, 1, 0); err == nil {
		t.Fatal("expected n<=0 error")
	}
}
