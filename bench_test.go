package condor

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section 4). Each benchmark times the work that produces the
// result (functional fabric execution for the deployment rows, the
// discrete-event pipeline simulation for the batch curves, the full
// explore+estimate pass for the improved-methodology columns) and attaches
// the paper-facing quantities as custom metrics, so `go test -bench . ` emits
// the same rows the paper reports. Paper-vs-measured numbers are recorded
// in EXPERIMENTS.md; cmd/condor-bench prints them as text tables.

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"condor/internal/aws"
	"condor/internal/baseline"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/models"
	"condor/internal/perf"
	"condor/internal/quant"
	"condor/internal/tensor"
)

// benchBuild builds a deployment once per benchmark.
func benchBuild(b *testing.B, ir *condorir.Network, ws *condorir.WeightSet) *Build {
	b.Helper()
	bld, err := New().BuildAccelerator(Input{IR: ir, Weights: ws})
	if err != nil {
		b.Fatal(err)
	}
	return bld
}

// reportTable1 attaches one Table 1 row as benchmark metrics.
func reportTable1(b *testing.B, row Table1Row) {
	b.ReportMetric(row.GFLOPS, "GFLOPS")
	b.ReportMetric(row.GFLOPSPerWatt, "GFLOPS/W")
	b.ReportMetric(row.LUTPct, "LUT%")
	b.ReportMetric(row.FFPct, "FF%")
	b.ReportMetric(row.DSPPct, "DSP%")
	b.ReportMetric(row.BRAMPct, "BRAM%")
	b.ReportMetric(row.AchievedMHz, "MHz")
}

// BenchmarkTable1_TC1 regenerates the TC1 row of Table 1: the deployment
// configuration (sequential feature maps, one PE per layer, 100 MHz on the
// F1 VU9P) is built, the benchmark body executes inference batches on the
// functional fabric, and the model-derived table quantities are attached as
// metrics.
func BenchmarkTable1_TC1(b *testing.B) {
	ir, ws, err := models.TC1()
	if err != nil {
		b.Fatal(err)
	}
	row, bld, err := table1Case("TC1", ir, ws)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := bld.Fabric()
	if err != nil {
		b.Fatal(err)
	}
	imgs := models.USPSImages(8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dep.Run(imgs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportTable1(b, row)
}

// BenchmarkTable1_LeNet regenerates the LeNet row of Table 1 (via the Caffe
// frontend, 180 MHz).
func BenchmarkTable1_LeNet(b *testing.B) {
	ir, ws, err := models.LeNet()
	if err != nil {
		b.Fatal(err)
	}
	row, bld, err := table1Case("LeNet", ir, ws)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := bld.Fabric()
	if err != nil {
		b.Fatal(err)
	}
	imgs := models.MNISTImages(2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dep.Run(imgs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportTable1(b, row)
}

// BenchmarkTable2 regenerates the improved-methodology columns of Table 2:
// the timed body is the full design-space exploration plus synthesis
// estimate that produces each column.
func BenchmarkTable2(b *testing.B) {
	cases := []struct {
		name string
		ir   func() (*condorir.Network, error)
	}{
		{"TC1", func() (*condorir.Network, error) { ir, _, err := models.TC1(); return ir, err }},
		{"LeNet", func() (*condorir.Network, error) { ir, _, err := models.LeNet(); return ir, err }},
		{"VGG16_features", func() (*condorir.Network, error) { return models.VGG16Features(), nil }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			ir, err := tc.ir()
			if err != nil {
				b.Fatal(err)
			}
			var row Table2Row
			for i := 0; i < b.N; i++ {
				row, err = table2Case(tc.name, ir)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.GFLOPS, "GFLOPS")
		})
	}
}

// BenchmarkFigure5 regenerates the Figure 5 series: for each batch size the
// timed body is the discrete-event simulation of the accelerator pipeline,
// and the mean time per image is attached as a metric.
func BenchmarkFigure5(b *testing.B) {
	nets := []struct {
		name string
		load func() (*condorir.Network, *condorir.WeightSet, error)
	}{
		{"TC1", models.TC1},
		{"LeNet", models.LeNet},
	}
	for _, nc := range nets {
		ir, ws, err := nc.load()
		if err != nil {
			b.Fatal(err)
		}
		bld := benchBuild(b, ir, ws)
		stages := perf.Stages(bld.Spec)
		for _, batch := range DefaultFigure5Batches {
			b.Run(fmt.Sprintf("%s/batch=%d", nc.name, batch), func(b *testing.B) {
				var total int64
				for i := 0; i < b.N; i++ {
					total = perf.SimulateBatch(stages, batch)
				}
				mean := perf.CyclesToMs(total, bld.Meta.AchievedMHz) / float64(batch)
				b.ReportMetric(mean, "ms/image")
			})
		}
	}
}

// BenchmarkAblationFusion compares the default unfolded mapping (one PE per
// layer, full intra-layer parallelism) against fusing all features-
// extraction layers onto a single PE — the resource/throughput trade-off of
// Section 3.2.
func BenchmarkAblationFusion(b *testing.B) {
	variants := []struct {
		name string
		mut  func(*condorir.Network)
	}{
		{"unfolded", func(*condorir.Network) {}},
		{"fused_features", func(ir *condorir.Network) {
			for i := range ir.Layers {
				kind, _ := ir.Layers[i].Kind()
				if kind.IsFeatureExtraction() || kind.IsActivation() {
					ir.Layers[i].PEGroup = 0
				}
			}
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			ir, ws, err := models.TC1()
			if err != nil {
				b.Fatal(err)
			}
			v.mut(ir)
			bld := benchBuild(b, ir, ws)
			stages := perf.Stages(bld.Spec)
			var total int64
			for i := 0; i < b.N; i++ {
				total = perf.SimulateBatch(stages, 32)
			}
			b.ReportMetric(perf.CyclesToMs(total, bld.Meta.AchievedMHz)/32, "ms/image")
			b.ReportMetric(float64(len(bld.Spec.PEs)), "PEs")
			b.ReportMetric(100*bld.Report.Utilization.LUT, "LUT%")
		})
	}
}

// BenchmarkAblationPortParallelism sweeps the feature-map port parallelism
// of LeNet's conv2 (the sequential-configuration bottleneck), the knob the
// improved methodology exploits.
func BenchmarkAblationPortParallelism(b *testing.B) {
	for _, out := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("out=%d", out), func(b *testing.B) {
			ir, ws, err := models.LeNet()
			if err != nil {
				b.Fatal(err)
			}
			for i := range ir.Layers {
				if ir.Layers[i].Name == "conv2" {
					ir.Layers[i].Parallelism = condorir.Parallelism{In: 1, Out: out}
				}
			}
			bld := benchBuild(b, ir, ws)
			stages := perf.Stages(bld.Spec)
			for i := 0; i < b.N; i++ {
				perf.SimulateBatch(stages, 16)
			}
			// The knob targets the features pipeline; report its sustained
			// throughput (the ip1 FC stage caps the whole-network figure).
			featFLOPs, err := bld.IR.FeatureFLOPs()
			if err != nil {
				b.Fatal(err)
			}
			featGF := perf.SteadyStateGFLOPS(featFLOPs,
				perf.Bottleneck(perf.FeatureStages(bld.Spec)), bld.Meta.AchievedMHz)
			b.ReportMetric(featGF, "feat-GFLOPS")
			b.ReportMetric(100*bld.Report.Utilization.DSP, "DSP%")
		})
	}
}

// BenchmarkAblationStencilBuffer quantifies the on-chip saving of the
// non-uniform reuse-buffer partitioning against buffering the whole input
// frame, per features-extraction PE of LeNet.
func BenchmarkAblationStencilBuffer(b *testing.B) {
	ir, ws, err := models.LeNet()
	if err != nil {
		b.Fatal(err)
	}
	bld := benchBuild(b, ir, ws)
	var stencilWords, frameWords int64
	for i := 0; i < b.N; i++ {
		stencilWords, frameWords = 0, 0
		for _, pe := range bld.Spec.PEs {
			if pe.Chain == nil {
				continue
			}
			stencilWords += int64(pe.Chain.BufferWords())
			for _, l := range pe.Layers {
				frameWords += int64(l.PaddedHeight() * l.PaddedWidth())
			}
		}
	}
	b.ReportMetric(float64(stencilWords), "stencil-words")
	b.ReportMetric(float64(frameWords), "frame-words")
	b.ReportMetric(float64(frameWords)/float64(stencilWords), "saving-x")
}

// BenchmarkAblationQuantization compares the float32 fabric against the
// int16/int8 fixed-point variants (the bandwidth/resource optimisation of
// the related work): resource footprint, power and weight-payload size.
func BenchmarkAblationQuantization(b *testing.B) {
	for _, p := range []quant.Precision{quant.Float32, quant.Int16, quant.Int8} {
		b.Run(p.String(), func(b *testing.B) {
			var bld *Build
			for i := 0; i < b.N; i++ {
				in := Input{}
				ir, ws, err := models.LeNet()
				if err != nil {
					b.Fatal(err)
				}
				in.IR, in.Weights, in.Precision = ir, ws, p
				bld, err = New().BuildAccelerator(in)
				if err != nil {
					b.Fatal(err)
				}
			}
			s, err := bld.Performance()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*bld.Report.Utilization.DSP, "DSP%")
			b.ReportMetric(100*bld.Report.Utilization.BRAM, "BRAM%")
			b.ReportMetric(s.PowerW, "W")
			if bld.QuantReport != nil {
				b.ReportMetric(float64(bld.QuantReport.BytesAfter)/1024, "weights-KiB")
			} else {
				wb, err := bld.WeightsBytes()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(wb))/1024, "weights-KiB")
			}
		})
	}
}

// BenchmarkFabricThroughput measures the raw functional-simulator
// throughput (host-side), useful for tracking simulator regressions. The
// cus=N sub-benchmarks run a 16-image batch on a replicated compute-unit
// pool and report img/s — the replication speedup appears on hosts with
// enough cores; on a single-core host all legs coincide. The dtype=int8
// legs run the same workloads on the packed int8 datapath (4 lanes per
// FIFO word, int32 accumulators); its host speedup over the bare float32
// legs is a gated baseline figure.
func BenchmarkFabricThroughput(b *testing.B) {
	ir, ws, err := models.TC1()
	if err != nil {
		b.Fatal(err)
	}
	bld := benchBuild(b, ir, ws)
	dep, err := bld.Fabric()
	if err != nil {
		b.Fatal(err)
	}
	imgs := models.USPSImages(1, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dep.Run(imgs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	batch := models.USPSImages(16, 5)
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cus=%d", n), func(b *testing.B) {
			pool := dataflow.NewCUPool(dep, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := pool.Run(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "img/s")
		})
	}
	benchStreamingLegs(b, dep, "")

	bld8, err := New().BuildAccelerator(Input{IR: ir, Weights: ws, Precision: quant.Int8})
	if err != nil {
		b.Fatal(err)
	}
	dep8, err := bld8.Fabric()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dtype=int8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := dep8.Run(imgs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "img/s")
	})
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cus=%d/dtype=int8", n), func(b *testing.B) {
			pool := dataflow.NewCUPool(dep8, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := pool.Run(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "img/s")
		})
	}
	benchStreamingLegs(b, dep8, "/dtype=int8")
	benchAlgoLegs(b)
}

// benchAlgoLegs measures the per-layer convolution algorithms on two
// LeNet-class single-conv workloads: conv5 (a 5×5 layer in LeNet-conv2's
// class, direct vs im2col+GEMM) and conv3 (a 3×3/stride-1 layer where
// Winograd F(2,3) also qualifies). benchdiff derives algo speedup rows from
// these legs against their algo=direct siblings and gates them, so the
// non-direct lowerings' host advantage is a tracked baseline figure.
func benchAlgoLegs(b *testing.B) {
	cases := []struct {
		name  string
		input condorir.InputShape
		layer condorir.Layer
		algos []string
	}{
		{"conv5", condorir.InputShape{Channels: 20, Height: 12, Width: 12},
			condorir.Layer{Name: "conv", Type: "Convolution", KernelSize: 5, Stride: 1, NumOutput: 50, PEGroup: -1},
			[]string{"direct", "im2col_gemm"}},
		{"conv3", condorir.InputShape{Channels: 16, Height: 16, Width: 16},
			condorir.Layer{Name: "conv", Type: "Convolution", KernelSize: 3, Stride: 1, Pad: 1, NumOutput: 16, PEGroup: -1},
			[]string{"direct", "im2col_gemm", "winograd_f23"}},
	}
	short := map[string]string{"direct": "direct", "im2col_gemm": "gemm", "winograd_f23": "winograd"}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(19))
		imgs := make([]*tensor.Tensor, 16)
		for i := range imgs {
			img := tensor.New(tc.input.Channels, tc.input.Height, tc.input.Width)
			img.FillRandom(rng, 1)
			imgs[i] = img
		}
		for _, bits := range []int{32, 8} {
			suffix := ""
			if bits == 8 {
				suffix = "/dtype=int8"
			}
			for _, algo := range tc.algos {
				b.Run(fmt.Sprintf("%s/algo=%s%s", tc.name, short[algo], suffix), func(b *testing.B) {
					acc := algoBenchFabric(b, tc.input, tc.layer, algo, bits)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, _, err := acc.Run(imgs); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(len(imgs))*float64(b.N)/b.Elapsed().Seconds(), "img/s")
				})
			}
		}
	}
}

// algoBenchFabric instantiates a single-conv fabric with seeded random
// weights, the given convolution algorithm, and word width.
func algoBenchFabric(b *testing.B, input condorir.InputShape, layer condorir.Layer, algo string, bits int) *dataflow.Accelerator {
	b.Helper()
	layer.Algorithm = algo
	ir := &condorir.Network{
		Name: "algobench", Board: "aws-f1-vu9p", FrequencyMHz: 100,
		Input: input, Layers: []condorir.Layer{layer},
	}
	w := tensor.New(layer.NumOutput, input.Channels, layer.KernelSize, layer.KernelSize)
	w.FillRandom(rand.New(rand.NewSource(23)), 0.5)
	ws := condorir.NewWeightSet()
	ws.Put(layer.Name, condorir.EntryWeights, w)
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		b.Fatal(err)
	}
	spec.WordBits = bits
	acc, err := dataflow.Instantiate(spec, ws)
	if err != nil {
		b.Fatal(err)
	}
	return acc
}

// benchStreamingLegs contrasts the two batch execution regimes on one
// fabric: batch=1 drains between images (one Run per image, today's
// image-at-a-time deployment) while batch=8 streams all eight back-to-back
// through a resident session at the pipeline's steady-state initiation
// interval — the continuous-streaming speedup CI's utilization gate tracks.
func benchStreamingLegs(b *testing.B, dep *dataflow.Accelerator, suffix string) {
	stream := models.USPSImages(8, 5)
	b.Run("batch=1"+suffix, func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range stream {
				if _, _, err := dep.Run(stream[j : j+1]); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "img/s")
	})
	b.Run("batch=8"+suffix, func(b *testing.B) {
		s := dep.OpenSession()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := s.RunBatch(stream); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "img/s")
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkReferenceEngine measures the golden CPU engine for comparison
// with the fabric simulator.
func BenchmarkReferenceEngine(b *testing.B) {
	ir, ws, err := models.TC1()
	if err != nil {
		b.Fatal(err)
	}
	net, err := ir.BuildNN(ws)
	if err != nil {
		b.Fatal(err)
	}
	img := models.USPSImages(1, 6)[0]
	b.ResetTimer()
	var out *tensor.Tensor
	for i := 0; i < b.N; i++ {
		out, err = net.Predict(img)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = out
}

// BenchmarkRoofline characterises the Table 1 deployments with the roofline
// model: operational intensity, compute/bandwidth roofs, and the sustained
// throughput of the pipeline model.
func BenchmarkRoofline(b *testing.B) {
	nets := []struct {
		name string
		load func() (*condorir.Network, *condorir.WeightSet, error)
	}{
		{"TC1", models.TC1},
		{"LeNet", models.LeNet},
	}
	for _, nc := range nets {
		b.Run(nc.name, func(b *testing.B) {
			ir, ws, err := nc.load()
			if err != nil {
				b.Fatal(err)
			}
			bld := benchBuild(b, ir, ws)
			var r perf.Roofline
			for i := 0; i < b.N; i++ {
				r, err = RooflineOf(bld)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.OperationalIntensity, "FLOP/byte")
			b.ReportMetric(r.PeakGFLOPS, "peak-GFLOPS")
			b.ReportMetric(r.AttainableGFLOPS, "roof-GFLOPS")
			b.ReportMetric(r.SustainedGFLOPS, "sustained-GFLOPS")
			if r.BandwidthBound() {
				b.Fatalf("Table 1 configurations must not be bandwidth-bound: %+v", r)
			}
		})
	}
}

// BenchmarkCloudSlotScaling shards a fixed batch across 1, 2, 4 and 8 FPGA
// slots of an f1.16xlarge and reports the modeled wall kernel time — the
// scale-out headroom the F1 cloud offering adds over a single device.
func BenchmarkCloudSlotScaling(b *testing.B) {
	srv := aws.NewServer(aws.Options{AFIGenerationDelay: time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ir, ws, err := models.TC1()
	if err != nil {
		b.Fatal(err)
	}
	bld, err := New().BuildAccelerator(Input{IR: ir, Weights: ws})
	if err != nil {
		b.Fatal(err)
	}
	for _, slots := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			dep, err := New().DeployCloud(bld, CloudConfig{
				Endpoint: ts.URL, License: aws.LicenseFromAMI(),
				Bucket:       fmt.Sprintf("condor-scale-%d-%d", slots, b.N),
				InstanceType: "f1.16xlarge", Slots: slots,
			})
			if err != nil {
				b.Fatal(err)
			}
			imgs := models.USPSImages(32, 13)
			var ms float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, ms, err = dep.InferSharded(imgs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(ms, "kernel-ms")
			b.ReportMetric(32/ms*1000, "img/s")
		})
	}
}

// BenchmarkAblationFIFODepth studies how the inter-PE FIFO skid affects the
// batch pipeline: with bounded boundaries a finished PE blocks on a full
// downstream FIFO (the fabric's blocking writes), so shallow skids slow
// unbalanced pipelines.
func BenchmarkAblationFIFODepth(b *testing.B) {
	ir, ws, err := models.LeNet()
	if err != nil {
		b.Fatal(err)
	}
	bld := benchBuild(b, ir, ws)
	stages := perf.Stages(bld.Spec)
	for _, skid := range []int{0, 1, 4, 16} {
		b.Run(fmt.Sprintf("skid=%d", skid), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				total = perf.SimulateBatchBounded(stages, 32, skid)
			}
			b.ReportMetric(perf.CyclesToMs(total, bld.Meta.AchievedMHz)/32, "ms/image")
		})
	}
	b.Run("unbounded", func(b *testing.B) {
		var total int64
		for i := 0; i < b.N; i++ {
			total = perf.SimulateBatch(stages, 32)
		}
		b.ReportMetric(perf.CyclesToMs(total, bld.Meta.AchievedMHz)/32, "ms/image")
	})
}

// BenchmarkExtraAlexNetFeatures extends the Table 2 experiment to AlexNet
// (features stage, same 2-port preliminary configuration).
func BenchmarkExtraAlexNetFeatures(b *testing.B) {
	ir := models.AlexNetFeatures()
	var row Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		row, err = table2Case("AlexNet", ir)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.GFLOPS, "GFLOPS")
}

// BenchmarkBaselineComparison pits the Condor dataflow accelerator against
// the GEMM/systolic baseline class (Caffeine et al.) at a matched MAC
// budget — the architectural comparison motivating the paper's design. The
// dataflow fabric pipelines layers and streams every input element once;
// the systolic array runs layers sequentially with blocked-GEMM re-reads.
func BenchmarkBaselineComparison(b *testing.B) {
	nets := []struct {
		name string
		load func() (*condorir.Network, *condorir.WeightSet, error)
	}{
		{"TC1", models.TC1},
		{"LeNet", models.LeNet},
	}
	for _, nc := range nets {
		b.Run(nc.name, func(b *testing.B) {
			ir, ws, err := nc.load()
			if err != nil {
				b.Fatal(err)
			}
			bld := benchBuild(b, ir, ws)
			lanes := 0
			for i := range bld.Report.PEs {
				lanes += bld.Report.PEs[i].MACs
			}
			// Baseline array with (at least) the same MAC budget.
			side := 1
			for side*side < lanes {
				side++
			}
			var rep *baseline.Report
			for i := 0; i < b.N; i++ {
				rep, err = baseline.Evaluate(ir, baseline.Config{
					Rows: side, Cols: side, FreqMHz: bld.Meta.AchievedMHz,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			s, err := bld.Performance()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(s.GFLOPS, "condor-GFLOPS")
			b.ReportMetric(rep.GFLOPS, "systolic-GFLOPS")
			b.ReportMetric(100*rep.Efficiency, "systolic-eff%")
			b.ReportMetric(float64(bld.Spec.DDRBytesPerImage())/1024, "condor-KiB/img")
			b.ReportMetric(float64(rep.DDRBytes)/1024, "systolic-KiB/img")
		})
	}
}

// BenchmarkBaselineGEMMEngine measures the im2col+GEMM reference engine
// against the direct engine on the host (an algorithmic baseline check).
func BenchmarkBaselineGEMMEngine(b *testing.B) {
	ir, ws, err := models.TC1()
	if err != nil {
		b.Fatal(err)
	}
	net, err := ir.BuildNN(ws)
	if err != nil {
		b.Fatal(err)
	}
	img := models.USPSImages(1, 3)[0]
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := net.Predict(img); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gemm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := net.GEMMForward(img); err != nil {
				b.Fatal(err)
			}
		}
	})
}
