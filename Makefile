GO ?= go

.PHONY: all build vet condorlint staticcheck govulncheck lint test race race-serve race-fleet stream-stress smoke-serve smoke-fleet bench bench-fabric bench-algo bench-check profile-fabric ci

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# condorlint runs the repository's custom static analyzers — fifodiscard,
# shapecompare, copylocks, httptimeout, plus the v2 concurrency suite
# (goleak, lockorder, atomiccounter, ctxdeadline) — over the whole tree.
condorlint:
	$(GO) run ./cmd/condorlint ./...

# staticcheck / govulncheck are third-party tools CI installs at pinned
# versions; locally they run only if already on PATH (the build itself
# stays zero-dependency).
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... \
		|| echo "staticcheck not installed; skipping (CI runs it pinned)"

govulncheck:
	@command -v govulncheck >/dev/null 2>&1 && govulncheck ./... \
		|| echo "govulncheck not installed; skipping (CI runs it pinned)"

lint: vet condorlint staticcheck govulncheck

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-serve focuses the race detector on the serving tier and its
# root-package stress gate (64 concurrent clients, mixed backend pool).
race-serve:
	$(GO) test -race ./internal/serve/...
	$(GO) test -race -run 'TestServe|TestDeployLocalUnique' .

# race-fleet focuses the race detector on the fleet tier, including the
# saturation-shedding and node-kill stress tests.
race-fleet:
	$(GO) test -race ./internal/fleet/... ./internal/loadgen/...

# stream-stress is the continuous-streaming fabric gate CI runs: the frame
# protocol unit tests, the epoch-framing equivalence sweep and the
# two-epochs-in-flight saturation test under the race detector, plus the
# CND024 static check — an undersized tap depth must pass the plain lint
# and fail the -batch lint.
stream-stress:
	$(GO) test -race -run 'TestFrame|TestEpoch|TestMarkEpoch|TestResetStats' ./internal/fifo/
	$(GO) test -race -run 'TestStreaming' -timeout 20m ./internal/dataflow/
	@if $(GO) run ./cmd/condor lint -model tc1 -batch -tap-depth 64 >/dev/null 2>&1; then \
		echo "undersized streaming tap depth passed -batch lint"; exit 1; fi
	$(GO) run ./cmd/condor lint -model tc1 -tap-depth 64 -q
	$(GO) run ./cmd/condor lint -model tc1 -batch -q

# smoke-serve boots awsmock and condor-serve, then probes one inference
# round over HTTP (the same step CI runs). The wait polls /readyz: /healthz
# answers 200 while the pool is still warming (listen-early).
smoke-serve:
	$(GO) build -o bin/ ./cmd/awsmock ./cmd/condor-serve
	./bin/awsmock -addr 127.0.0.1:8780 -afi-delay 100ms -fail-rate 0.05 & echo $$! > .awsmock.pid
	./bin/condor-serve -addr 127.0.0.1:8781 -model tc1 -local 1 -cus 2 \
		-endpoint http://127.0.0.1:8780 -instance-type f1.4xlarge -slots 2 & echo $$! > .serve.pid
	for i in $$(seq 1 50); do curl -fs http://127.0.0.1:8781/readyz >/dev/null 2>&1 && break; sleep 0.2; done
	./bin/condor-serve -probe http://127.0.0.1:8781
	curl -fs http://127.0.0.1:8781/readyz >/dev/null
	kill $$(cat .serve.pid .awsmock.pid); rm -f .serve.pid .awsmock.pid

# smoke-fleet boots a router plus two self-registering condor-serve nodes
# and drives them with the open-loop generator (the CI loadgen-smoke job).
# condor-loadgen exits non-zero if any request falls outside the five
# outcome classes — the zero-silent-drop gate.
smoke-fleet:
	$(GO) build -o bin/ ./cmd/condor-fleet ./cmd/condor-serve ./cmd/condor-loadgen
	./bin/condor-fleet -addr 127.0.0.1:8790 -probe-interval 200ms & echo $$! > .fleet.pid
	./bin/condor-serve -addr 127.0.0.1:8781 -model tc1 -local 1 -cus 2 \
		-fleet http://127.0.0.1:8790 & echo $$! > .node1.pid
	./bin/condor-serve -addr 127.0.0.1:8782 -model tc1 -local 1 -cus 2 \
		-fleet http://127.0.0.1:8790 & echo $$! > .node2.pid
	for i in $$(seq 1 50); do curl -fs http://127.0.0.1:8790/readyz >/dev/null 2>&1 && break; sleep 0.2; done
	./bin/condor-loadgen -target http://127.0.0.1:8790 -rate 100 -duration 3s \
		-deadline-ms 500 -high-frac 0.5 -json loadgen.json
	grep -q '^  "errors": 0' loadgen.json
	curl -fs http://127.0.0.1:8790/metricsz | grep -q '^condor_fleet_requests_total'
	kill $$(cat .node1.pid .node2.pid .fleet.pid); rm -f .node1.pid .node2.pid .fleet.pid

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-fabric runs the streaming-datapath microbenchmarks (including the
# compute-unit replication legs) across both fabric numeric formats and
# writes the machine-readable results CI uploads as an artifact. The
# /dtype=int8 legs exercise the packed 4-lane datapath; benchdiff derives
# and gates the int8-over-float32 speedup ratio from the paired rows.
bench-fabric:
	$(GO) run ./cmd/condor-bench -json BENCH_fabric.json -cus 1,2 -dtype float32,int8

# bench-algo sweeps the per-layer convolution algorithms (direct vs
# im2col+GEMM vs Winograd F(2,3)) on the two LeNet-class single-conv
# workloads, per dtype — the host-side view of the per-layer algorithm
# datapaths. The same legs ride bench-fabric's JSON, where benchdiff gates
# the derived <algo>_speedup_x rows.
bench-algo:
	$(GO) test -run '^$$' -bench 'BenchmarkFabricThroughput/conv' -benchtime 20x .

# bench-check is the throughput-regression gate: regenerate the fabric
# microbenchmarks and diff them against the committed baseline, failing on a
# >25% drop — then the tighter utilization gate diffs only the derived
# pipeline_efficiency rows (measured batch=8/batch=1 speedup over the
# modeled host steady-state speedup), failing on a >10% drop. Refresh the
# baseline with
# `go run ./cmd/condor-bench -json BENCH_baseline.json -cus 1,2 -dtype float32,int8`
# on a quiet machine (the -cus/-dtype legs must match the baseline's rows, or
# the gate errors on the missing benchmark).
bench-check: bench-fabric
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_fabric.json -max-regression 0.25
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_fabric.json -only pipeline_efficiency -max-regression 0.10
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_fabric.json -only '(gemm|winograd)_speedup_x' -max-regression 0.25

# profile-fabric captures a CPU profile of the functional fabric benchmark;
# inspect it with `go tool pprof fabric.cpu.prof`.
profile-fabric:
	$(GO) test -run '^$$' -bench BenchmarkFabricThroughput -benchtime 200x \
		-cpuprofile fabric.cpu.prof -o fabric.bench.test .
	$(GO) tool pprof -top -nodecount=15 fabric.cpu.prof

# ci is the full gate the workflow runs: build, both linters, and the race
# detector over the test suite.
ci: build lint race
