GO ?= go

.PHONY: all build vet condorlint lint test race bench ci

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# condorlint runs the repository's custom static analyzers (fifodiscard,
# shapecompare, copylocks, httptimeout) over the whole tree.
condorlint:
	$(GO) run ./cmd/condorlint ./...

lint: vet condorlint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# ci is the full gate the workflow runs: build, both linters, and the race
# detector over the test suite.
ci: build lint race
