package condor

import (
	"fmt"
	"math/rand"

	"condor/internal/dataflow"
	"condor/internal/obs"
	"condor/internal/tensor"
)

// CosimReport is the outcome of a co-simulation run: the fabric simulator
// executed against the golden reference engine on the same inputs — the
// equivalent of Vivado HLS's C/RTL co-simulation step, which the real flow
// would run before committing to a multi-hour synthesis.
type CosimReport struct {
	Images     int
	MaxAbsDiff float64
	Tolerance  float64
	// Mismatches counts images whose outputs exceeded the tolerance.
	Mismatches int
	// ArgMaxAgreement is the fraction of images with identical argmax.
	ArgMaxAgreement float64
	// ModelCycles is the modeled bottleneck interval; MeasuredCycles the
	// per-PE maximum measured by the functional simulator (they must agree).
	ModelCycles    int64
	MeasuredCycles int64
	// Stats carries the fabric run's full counters (per-PE cycles, DDR
	// traffic, FIFO occupancy) for observability dumps.
	Stats *dataflow.RunStats
}

// MetricsText renders the run's fabric counters in Prometheus text form
// (empty when the run never reached the fabric).
func (r CosimReport) MetricsText() string {
	if r.Stats == nil {
		return ""
	}
	reg := obs.NewRegistry()
	r.Stats.Publish(reg)
	return reg.TextSnapshot()
}

// Passed reports whether the co-simulation met the tolerance on every image
// and the cycle model agreed with the measured fabric.
func (r CosimReport) Passed() bool {
	return r.Mismatches == 0 && r.ModelCycles == r.MeasuredCycles
}

// DefaultCosimTolerance allows for float32 reassociation between the
// fabric's accumulation order and the reference engine's.
const DefaultCosimTolerance = 2e-3

// Cosim validates a build: n random inputs are pushed through the
// functional dataflow fabric and compared element-wise against the
// reference CNN engine, and the analytic cycle model is checked against the
// simulator's measured per-PE cycles.
func (b *Build) Cosim(n int, seed int64, tolerance float64) (CosimReport, error) {
	if n <= 0 {
		return CosimReport{}, fmt.Errorf("condor: cosim needs at least one image")
	}
	autoTol := tolerance <= 0
	if autoTol {
		tolerance = DefaultCosimTolerance
	}
	rep := CosimReport{Images: n, Tolerance: tolerance}

	net, err := b.IR.BuildNN(b.Weights)
	if err != nil {
		return rep, err
	}
	acc, err := b.Fabric()
	if err != nil {
		return rep, err
	}
	rng := rand.New(rand.NewSource(seed))
	imgs := make([]*tensor.Tensor, n)
	for i := range imgs {
		img := tensor.New(b.Spec.Input.Channels, b.Spec.Input.Height, b.Spec.Input.Width)
		img.FillRandom(rng, 1)
		imgs[i] = img
	}
	outs, stats, err := acc.Run(imgs)
	if err != nil {
		return rep, err
	}
	rep.Stats = stats
	if autoTol && b.Spec.WordBits == 8 {
		// The packed int8 fabric is bounded-error, not bit-identical: widen
		// the default tolerance to the bound the run's recorded quantization
		// scales imply (never below the float reassociation allowance).
		if qb := stats.QuantErrorBound(); qb > tolerance {
			tolerance = qb
			rep.Tolerance = qb
		}
	}
	agree := 0
	for i := range imgs {
		want, err := net.Predict(imgs[i])
		if err != nil {
			return rep, err
		}
		d := tensor.MaxAbsDiff(outs[i], want)
		if d > rep.MaxAbsDiff {
			rep.MaxAbsDiff = d
		}
		if d > tolerance {
			rep.Mismatches++
		}
		if outs[i].ArgMax() == want.ArgMax() {
			agree++
		}
	}
	rep.ArgMaxAgreement = float64(agree) / float64(n)

	// Cycle-model cross check: the analytic bottleneck must equal the
	// simulator's measured per-PE maximum.
	rep.MeasuredCycles = stats.BottleneckCycles()
	s, err := b.Performance()
	if err != nil {
		return rep, err
	}
	rep.ModelCycles = s.BottleneckCycles
	return rep, nil
}
