package main

import (
	"testing"
)

func file(results ...benchResult) benchFile { return benchFile{Benchmarks: results} }

func TestCompareAtBaseline(t *testing.T) {
	base := file(
		benchResult{Name: "fabric/tc1/b8", ImgPerS: 1000},
		benchResult{Name: "fabric/lenet/b8", ImgPerS: 400},
	)
	verdicts, missing, err := compare(base, base, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("identical files reported missing benchmarks: %v", missing)
	}
	for _, v := range verdicts {
		if v.Regressed {
			t.Errorf("%s: identical results flagged as regression (delta %v)", v.Name, v.Delta)
		}
		if v.Delta != 0 {
			t.Errorf("%s: want delta 0, got %v", v.Name, v.Delta)
		}
	}
}

func TestCompareInjectedRegression(t *testing.T) {
	base := file(
		benchResult{Name: "fabric/tc1/b8", ImgPerS: 1000},
		benchResult{Name: "fabric/lenet/b8", ImgPerS: 400},
	)
	// tc1 loses 30% of its throughput — past the 25% gate; lenet is fine.
	cur := file(
		benchResult{Name: "fabric/tc1/b8", ImgPerS: 700},
		benchResult{Name: "fabric/lenet/b8", ImgPerS: 390},
	)
	verdicts, _, err := compare(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	regressed := 0
	for _, v := range verdicts {
		if v.Regressed {
			regressed++
			if v.Name != "fabric/tc1/b8" {
				t.Errorf("wrong benchmark flagged: %s", v.Name)
			}
		}
	}
	if regressed != 1 {
		t.Fatalf("want exactly 1 regression, got %d (%+v)", regressed, verdicts)
	}
}

func TestCompareBoundaryAndImprovement(t *testing.T) {
	base := file(
		benchResult{Name: "exact", ImgPerS: 1000},
		benchResult{Name: "faster", ImgPerS: 1000},
	)
	// A drop of exactly the threshold passes (the gate is strict-greater);
	// an improvement always passes.
	cur := file(
		benchResult{Name: "exact", ImgPerS: 750},
		benchResult{Name: "faster", ImgPerS: 2000},
	)
	verdicts, _, err := compare(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if v.Regressed {
			t.Errorf("%s: delta %v should not trip a 0.25 gate", v.Name, v.Delta)
		}
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := file(
		benchResult{Name: "fabric/tc1/b8", ImgPerS: 1000},
		benchResult{Name: "fabric/lenet/b8", ImgPerS: 400},
	)
	cur := file(benchResult{Name: "fabric/lenet/b8", ImgPerS: 400})
	verdicts, missing, err := compare(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// The absence is collected by name — the gate in main fails on it unless
	// -allow-missing — and the rest of the comparison still runs.
	if len(missing) != 1 || missing[0] != "fabric/tc1/b8" {
		t.Fatalf("missing = %v, want the dropped benchmark named", missing)
	}
	if len(verdicts) != 1 || verdicts[0].Name != "fabric/lenet/b8" {
		t.Fatalf("remaining benchmarks not compared: %+v", verdicts)
	}
	if verdicts[0].Regressed {
		t.Errorf("surviving benchmark wrongly regressed: %+v", verdicts[0])
	}
}
