package main

import (
	"strings"
	"testing"
)

func file(results ...benchResult) benchFile { return benchFile{Benchmarks: results} }

func TestCompareAtBaseline(t *testing.T) {
	base := file(
		benchResult{Name: "fabric/tc1/b8", ImgPerS: 1000},
		benchResult{Name: "fabric/lenet/b8", ImgPerS: 400},
	)
	verdicts, err := compare(base, base, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if v.Regressed {
			t.Errorf("%s: identical results flagged as regression (delta %v)", v.Name, v.Delta)
		}
		if v.Delta != 0 {
			t.Errorf("%s: want delta 0, got %v", v.Name, v.Delta)
		}
	}
}

func TestCompareInjectedRegression(t *testing.T) {
	base := file(
		benchResult{Name: "fabric/tc1/b8", ImgPerS: 1000},
		benchResult{Name: "fabric/lenet/b8", ImgPerS: 400},
	)
	// tc1 loses 30% of its throughput — past the 25% gate; lenet is fine.
	cur := file(
		benchResult{Name: "fabric/tc1/b8", ImgPerS: 700},
		benchResult{Name: "fabric/lenet/b8", ImgPerS: 390},
	)
	verdicts, err := compare(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	regressed := 0
	for _, v := range verdicts {
		if v.Regressed {
			regressed++
			if v.Name != "fabric/tc1/b8" {
				t.Errorf("wrong benchmark flagged: %s", v.Name)
			}
		}
	}
	if regressed != 1 {
		t.Fatalf("want exactly 1 regression, got %d (%+v)", regressed, verdicts)
	}
}

func TestCompareBoundaryAndImprovement(t *testing.T) {
	base := file(
		benchResult{Name: "exact", ImgPerS: 1000},
		benchResult{Name: "faster", ImgPerS: 1000},
	)
	// A drop of exactly the threshold passes (the gate is strict-greater);
	// an improvement always passes.
	cur := file(
		benchResult{Name: "exact", ImgPerS: 750},
		benchResult{Name: "faster", ImgPerS: 2000},
	)
	verdicts, err := compare(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if v.Regressed {
			t.Errorf("%s: delta %v should not trip a 0.25 gate", v.Name, v.Delta)
		}
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := file(benchResult{Name: "fabric/tc1/b8", ImgPerS: 1000})
	cur := file(benchResult{Name: "fabric/other", ImgPerS: 1000})
	_, err := compare(base, cur, 0.25)
	if err == nil {
		t.Fatal("dropped benchmark must fail the gate")
	}
	if !strings.Contains(err.Error(), "fabric/tc1/b8") {
		t.Errorf("error should name the missing benchmark: %v", err)
	}
}
