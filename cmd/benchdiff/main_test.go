package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"condor/internal/loadgen"
)

func file(results ...benchResult) resultFile {
	var f resultFile
	for _, b := range results {
		f.Rows = append(f.Rows, metricRow{Name: b.Name, Value: b.ImgPerS, Unit: "img/s"})
	}
	return f
}

func TestCompareAtBaseline(t *testing.T) {
	base := file(
		benchResult{Name: "fabric/tc1/b8", ImgPerS: 1000},
		benchResult{Name: "fabric/lenet/b8", ImgPerS: 400},
	)
	verdicts, missing, err := compare(base, base, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("identical files reported missing benchmarks: %v", missing)
	}
	for _, v := range verdicts {
		if v.Regressed {
			t.Errorf("%s: identical results flagged as regression (delta %v)", v.Name, v.Delta)
		}
		if v.Delta != 0 {
			t.Errorf("%s: want delta 0, got %v", v.Name, v.Delta)
		}
	}
}

func TestCompareInjectedRegression(t *testing.T) {
	base := file(
		benchResult{Name: "fabric/tc1/b8", ImgPerS: 1000},
		benchResult{Name: "fabric/lenet/b8", ImgPerS: 400},
	)
	// tc1 loses 30% of its throughput — past the 25% gate; lenet is fine.
	cur := file(
		benchResult{Name: "fabric/tc1/b8", ImgPerS: 700},
		benchResult{Name: "fabric/lenet/b8", ImgPerS: 390},
	)
	verdicts, _, err := compare(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	regressed := 0
	for _, v := range verdicts {
		if v.Regressed {
			regressed++
			if v.Name != "fabric/tc1/b8" {
				t.Errorf("wrong benchmark flagged: %s", v.Name)
			}
		}
	}
	if regressed != 1 {
		t.Fatalf("want exactly 1 regression, got %d (%+v)", regressed, verdicts)
	}
}

func TestCompareBoundaryAndImprovement(t *testing.T) {
	base := file(
		benchResult{Name: "exact", ImgPerS: 1000},
		benchResult{Name: "faster", ImgPerS: 1000},
	)
	// A drop of exactly the threshold passes (the gate is strict-greater);
	// an improvement always passes.
	cur := file(
		benchResult{Name: "exact", ImgPerS: 750},
		benchResult{Name: "faster", ImgPerS: 2000},
	)
	verdicts, _, err := compare(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if v.Regressed {
			t.Errorf("%s: delta %v should not trip a 0.25 gate", v.Name, v.Delta)
		}
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := file(
		benchResult{Name: "fabric/tc1/b8", ImgPerS: 1000},
		benchResult{Name: "fabric/lenet/b8", ImgPerS: 400},
	)
	cur := file(benchResult{Name: "fabric/lenet/b8", ImgPerS: 400})
	verdicts, missing, err := compare(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// The absence is collected by name — the gate in main fails on it unless
	// -allow-missing — and the rest of the comparison still runs.
	if len(missing) != 1 || missing[0] != "fabric/tc1/b8" {
		t.Fatalf("missing = %v, want the dropped benchmark named", missing)
	}
	if len(verdicts) != 1 || verdicts[0].Name != "fabric/lenet/b8" {
		t.Fatalf("remaining benchmarks not compared: %+v", verdicts)
	}
	if verdicts[0].Regressed {
		t.Errorf("surviving benchmark wrongly regressed: %+v", verdicts[0])
	}
}

func TestCompareLowerBetterDirections(t *testing.T) {
	rows := func(p99, goodput, shed float64) resultFile {
		return resultFile{Rows: []metricRow{
			{Name: "p99_ms", Value: p99, Unit: "ms", LowerBetter: true},
			{Name: "goodput_rps", Value: goodput, Unit: "req/s"},
			{Name: "shed", Value: shed, Unit: "req", LowerBetter: true},
		}}
	}
	base := rows(10, 100, 0)

	// Latency improving and goodput rising never regress; shed stays clean.
	verdicts, _, err := compare(base, rows(5, 200, 0), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if v.Regressed {
			t.Errorf("%s: improvement flagged as regression (%+v)", v.Name, v)
		}
	}

	// Latency rising 50% regresses; goodput and shed hold.
	verdicts, _, err = compare(base, rows(15, 100, 0), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if got, want := v.Regressed, v.Name == "p99_ms"; got != want {
			t.Errorf("%s: Regressed = %v, want %v", v.Name, got, want)
		}
	}

	// Sheds appearing against a clean baseline regress, whatever the count.
	verdicts, _, err = compare(base, rows(10, 100, 3), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if v.Name == "shed" {
			if !v.Regressed || !math.IsInf(v.Delta, 1) {
				t.Errorf("shed 0 -> 3 not flagged: %+v", v)
			}
		} else if v.Regressed {
			t.Errorf("%s: wrongly regressed (%+v)", v.Name, v)
		}
	}
}

func TestPipelineRows(t *testing.T) {
	bs := []benchResult{
		{Name: "BenchmarkFabricThroughput/batch=1", ImgPerS: 1000},
		{Name: "BenchmarkFabricThroughput/batch=8", ImgPerS: 1500, ModelSpeedupX: 2},
		{Name: "BenchmarkFabricThroughput/batch=1/dtype=int8", ImgPerS: 4000},
		{Name: "BenchmarkFabricThroughput/batch=8/dtype=int8", ImgPerS: 6000, ModelSpeedupX: 1.5},
		// No model recorded (old baseline, or a non-streaming leg): no row.
		{Name: "BenchmarkFabricThroughput/cus=2", ImgPerS: 2000},
	}
	rows := pipelineRows(bs)
	if len(rows) != 2 {
		t.Fatalf("derived %d rows, want 2: %+v", len(rows), rows)
	}
	byName := map[string]metricRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// float32: measured 1.5x over a modeled 2x → efficiency 0.75.
	if r := byName["BenchmarkFabricThroughput/pipeline_efficiency"]; math.Abs(r.Value-0.75) > 1e-12 || r.LowerBetter {
		t.Errorf("float32 efficiency row = %+v, want 0.75 higher-better", r)
	}
	// int8: measured 1.5x over a modeled 1.5x → efficiency 1.0, dtype suffix kept.
	if r := byName["BenchmarkFabricThroughput/pipeline_efficiency/dtype=int8"]; math.Abs(r.Value-1.0) > 1e-12 {
		t.Errorf("int8 efficiency row = %+v, want 1.0", r)
	}

	// A batch=8 leg without its batch=1 counterpart derives nothing.
	if rows := pipelineRows(bs[1:2]); len(rows) != 0 {
		t.Errorf("orphan batch=8 leg derived rows: %+v", rows)
	}
}

// The derived efficiency row must flow through readResults so the gate can
// diff it, and a pipelining regression (model unchanged, measured speedup
// collapsed) must trip the 10% utilization gate even when every raw img/s
// row also moved — the ratio is what is keyed, not the absolutes.
func TestPipelineEfficiencyGate(t *testing.T) {
	doc := func(b1, b8 float64) map[string]any {
		return map[string]any{"benchmarks": []benchResult{
			{Name: "BenchmarkFabricThroughput/batch=1", ImgPerS: b1},
			{Name: "BenchmarkFabricThroughput/batch=8", ImgPerS: b8, ModelSpeedupX: 2},
		}}
	}
	base, err := readResults(writeJSON(t, "base.json", doc(1000, 1800)))
	if err != nil {
		t.Fatal(err)
	}
	// The fabric stopped streaming: batch=8 degenerates to batch=1 speed.
	cur, err := readResults(writeJSON(t, "cur.json", doc(1000, 1010)))
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile("pipeline_efficiency")
	baseOnly, curOnly := filterRows(base.Rows, re), filterRows(cur.Rows, re)
	if len(baseOnly) != 1 || baseOnly[0].Name != "BenchmarkFabricThroughput/pipeline_efficiency" {
		t.Fatalf("filtered baseline = %+v, want the one efficiency row", baseOnly)
	}
	verdicts, missing, err := compare(resultFile{Rows: baseOnly}, resultFile{Rows: curOnly}, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
	if len(verdicts) != 1 || !verdicts[0].Regressed {
		t.Fatalf("collapsed pipelining did not trip the utilization gate: %+v", verdicts)
	}
}

func TestFilterRows(t *testing.T) {
	rows := []metricRow{{Name: "a/pipeline_efficiency"}, {Name: "a/batch=8"}, {Name: "b"}}
	got := filterRows(rows, regexp.MustCompile("^a/"))
	if len(got) != 2 {
		t.Fatalf("filtered = %+v", got)
	}
	if got := filterRows(rows, regexp.MustCompile("nope")); len(got) != 0 {
		t.Fatalf("want empty, got %+v", got)
	}
}

func writeJSON(t *testing.T, name string, doc any) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadResultsShapes(t *testing.T) {
	benchPath := writeJSON(t, "bench.json", map[string]any{
		"benchmarks": []benchResult{{Name: "fabric/tc1/b8", ImgPerS: 123}},
	})
	got, err := readResults(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0].Name != "fabric/tc1/b8" || got.Rows[0].LowerBetter {
		t.Fatalf("bench rows = %+v", got.Rows)
	}

	rep := &loadgen.Report{
		Kind: loadgen.ReportKind, OfferedRPS: 200, GoodputRPS: 180,
		Shed: 7, Latency: loadgen.Quantiles{P50: 3, P95: 8, P99: 12},
	}
	single, err := readResults(writeJSON(t, "run.json", rep))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]metricRow{}
	for _, r := range single.Rows {
		byName[r.Name] = r
	}
	if g := byName["loadgen@200rps/goodput_rps"]; g.Value != 180 || g.LowerBetter {
		t.Errorf("goodput row = %+v", g)
	}
	if p := byName["loadgen@200rps/p99_ms"]; p.Value != 12 || !p.LowerBetter {
		t.Errorf("p99 row = %+v", p)
	}
	if s := byName["loadgen@200rps/shed"]; s.Value != 7 || !s.LowerBetter {
		t.Errorf("shed row = %+v", s)
	}

	sweep := loadgen.Sweep{Kind: loadgen.SweepKind, Runs: []*loadgen.Report{
		rep,
		{Kind: loadgen.ReportKind, OfferedRPS: 400, GoodputRPS: 300},
	}}
	multi, err := readResults(writeJSON(t, "sweep.json", sweep))
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Rows) != 2*len(single.Rows) {
		t.Fatalf("sweep rows = %d, want %d", len(multi.Rows), 2*len(single.Rows))
	}
	names := map[string]bool{}
	for _, r := range multi.Rows {
		names[r.Name] = true
	}
	if !names["loadgen@200rps/goodput_rps"] || !names["loadgen@400rps/goodput_rps"] {
		t.Errorf("sweep points not namespaced by offered load: %v", names)
	}

	if _, err := readResults(writeJSON(t, "odd.json", map[string]any{"kind": "mystery"})); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := readResults(writeJSON(t, "empty.json", map[string]any{})); err == nil {
		t.Error("empty file accepted")
	}
}
