// Command benchdiff is the CI bench-regression gate: it compares two
// `condor-bench -json` result files and fails when any benchmark's
// throughput dropped by more than the allowed fraction against the
// committed baseline.
//
// Usage:
//
//	condor-bench -json BENCH_fabric.json
//	benchdiff -baseline BENCH_baseline.json -current BENCH_fabric.json -max-regression 0.25
//
// The gate is deliberately loose (default 25%): shared CI runners are noisy,
// and the gate exists to catch algorithmic regressions — an accidental
// word-at-a-time fallback, a lock on the hot path — not single-digit drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// benchResult mirrors one row of the condor-bench JSON schema.
type benchResult struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	ImgPerS float64 `json:"img_per_s"`
}

type benchFile struct {
	Benchmarks []benchResult `json:"benchmarks"`
}

// verdict is the comparison outcome for one baseline benchmark.
type verdict struct {
	Name      string
	Baseline  float64 // img/s
	Current   float64 // img/s
	Delta     float64 // fractional throughput change; negative is slower
	Regressed bool
}

// compare checks every baseline benchmark against the current run. A
// benchmark missing from the current file is collected into the missing list
// — every absence is named, the rest of the comparison still runs, and the
// caller decides whether the gate fails (a renamed bench leg must not dodge
// the gate silently). Benchmarks only in the current file are ignored (new
// benchmarks need a baseline refresh, not a failure).
func compare(baseline, current benchFile, maxRegression float64) ([]verdict, []string, error) {
	cur := make(map[string]benchResult, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	out := make([]verdict, 0, len(baseline.Benchmarks))
	var missing []string
	for _, base := range baseline.Benchmarks {
		c, ok := cur[base.Name]
		if !ok {
			missing = append(missing, base.Name)
			continue
		}
		if base.ImgPerS <= 0 {
			return nil, nil, fmt.Errorf("baseline benchmark %q has non-positive throughput %v", base.Name, base.ImgPerS)
		}
		delta := c.ImgPerS/base.ImgPerS - 1
		out = append(out, verdict{
			Name:      base.Name,
			Baseline:  base.ImgPerS,
			Current:   c.ImgPerS,
			Delta:     delta,
			Regressed: delta < -maxRegression,
		})
	}
	return out, missing, nil
}

func readBenchFile(path string) (benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchFile{}, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return benchFile{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return benchFile{}, fmt.Errorf("%s: no benchmarks", path)
	}
	return f, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline results")
	currentPath := flag.String("current", "BENCH_fabric.json", "fresh condor-bench -json results")
	maxRegression := flag.Float64("max-regression", 0.25, "largest tolerated fractional throughput drop")
	allowMissing := flag.Bool("allow-missing", false, "warn (instead of fail) when a baseline benchmark is absent from the current run")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	baseline, err := readBenchFile(*baselinePath)
	if err != nil {
		fail(err)
	}
	current, err := readBenchFile(*currentPath)
	if err != nil {
		fail(err)
	}
	verdicts, missing, err := compare(baseline, current, *maxRegression)
	if err != nil {
		fail(err)
	}
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: benchmark %q is in the baseline but missing from the current run (renamed or dropped?)\n", name)
	}

	regressions := 0
	fmt.Printf("%-40s %14s %14s %9s\n", "benchmark", "baseline img/s", "current img/s", "delta")
	for _, v := range verdicts {
		mark := ""
		if v.Regressed {
			mark = "  << REGRESSION"
			regressions++
		}
		fmt.Printf("%-40s %14.1f %14.1f %8.1f%%%s\n", v.Name, v.Baseline, v.Current, 100*v.Delta, mark)
	}
	if regressions > 0 {
		// Name each offender with its delta so the CI failure line is
		// actionable without digging through the job log for the table.
		detail := ""
		for _, v := range verdicts {
			if v.Regressed {
				detail += fmt.Sprintf("\n  %s: %.1f -> %.1f img/s (%.1f%%)", v.Name, v.Baseline, v.Current, 100*v.Delta)
			}
		}
		fail(fmt.Errorf("%d of %d benchmarks regressed more than %.0f%% vs %s%s",
			regressions, len(verdicts), 100**maxRegression, *baselinePath, detail))
	}
	if len(missing) > 0 && !*allowMissing {
		// Absent legs fail the gate by default: a renamed benchmark would
		// otherwise retire its own baseline and dodge the comparison. Pass
		// -allow-missing while a rename lands, then refresh the baseline.
		fail(fmt.Errorf("%d baseline benchmark(s) missing from the current run: %s (rename the leg in the baseline or pass -allow-missing)",
			len(missing), strings.Join(missing, ", ")))
	}
	fmt.Printf("ok: %d benchmarks within %.0f%% of baseline\n", len(verdicts), 100**maxRegression)
}
