// Command benchdiff is the CI bench-regression gate: it compares two
// `condor-bench -json` result files and fails when any benchmark's
// throughput dropped by more than the allowed fraction against the
// committed baseline.
//
// Usage:
//
//	condor-bench -json BENCH_fabric.json
//	benchdiff -baseline BENCH_baseline.json -current BENCH_fabric.json -max-regression 0.25
//
// The gate is deliberately loose (default 25%): shared CI runners are noisy,
// and the gate exists to catch algorithmic regressions — an accidental
// word-at-a-time fallback, a lock on the hot path — not single-digit drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// benchResult mirrors one row of the condor-bench JSON schema.
type benchResult struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	ImgPerS float64 `json:"img_per_s"`
}

type benchFile struct {
	Benchmarks []benchResult `json:"benchmarks"`
}

// verdict is the comparison outcome for one baseline benchmark.
type verdict struct {
	Name      string
	Baseline  float64 // img/s
	Current   float64 // img/s
	Delta     float64 // fractional throughput change; negative is slower
	Regressed bool
}

// compare checks every baseline benchmark against the current run. A
// benchmark missing from the current file is an error (a silently dropped
// benchmark must not pass the gate); benchmarks only in the current file are
// ignored (new benchmarks need a baseline refresh, not a failure).
func compare(baseline, current benchFile, maxRegression float64) ([]verdict, error) {
	cur := make(map[string]benchResult, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	out := make([]verdict, 0, len(baseline.Benchmarks))
	for _, base := range baseline.Benchmarks {
		c, ok := cur[base.Name]
		if !ok {
			return nil, fmt.Errorf("benchmark %q is in the baseline but missing from the current run", base.Name)
		}
		if base.ImgPerS <= 0 {
			return nil, fmt.Errorf("baseline benchmark %q has non-positive throughput %v", base.Name, base.ImgPerS)
		}
		delta := c.ImgPerS/base.ImgPerS - 1
		out = append(out, verdict{
			Name:      base.Name,
			Baseline:  base.ImgPerS,
			Current:   c.ImgPerS,
			Delta:     delta,
			Regressed: delta < -maxRegression,
		})
	}
	return out, nil
}

func readBenchFile(path string) (benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchFile{}, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return benchFile{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return benchFile{}, fmt.Errorf("%s: no benchmarks", path)
	}
	return f, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline results")
	currentPath := flag.String("current", "BENCH_fabric.json", "fresh condor-bench -json results")
	maxRegression := flag.Float64("max-regression", 0.25, "largest tolerated fractional throughput drop")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	baseline, err := readBenchFile(*baselinePath)
	if err != nil {
		fail(err)
	}
	current, err := readBenchFile(*currentPath)
	if err != nil {
		fail(err)
	}
	verdicts, err := compare(baseline, current, *maxRegression)
	if err != nil {
		fail(err)
	}

	regressions := 0
	fmt.Printf("%-40s %14s %14s %9s\n", "benchmark", "baseline img/s", "current img/s", "delta")
	for _, v := range verdicts {
		mark := ""
		if v.Regressed {
			mark = "  << REGRESSION"
			regressions++
		}
		fmt.Printf("%-40s %14.1f %14.1f %8.1f%%%s\n", v.Name, v.Baseline, v.Current, 100*v.Delta, mark)
	}
	if regressions > 0 {
		// Name each offender with its delta so the CI failure line is
		// actionable without digging through the job log for the table.
		detail := ""
		for _, v := range verdicts {
			if v.Regressed {
				detail += fmt.Sprintf("\n  %s: %.1f -> %.1f img/s (%.1f%%)", v.Name, v.Baseline, v.Current, 100*v.Delta)
			}
		}
		fail(fmt.Errorf("%d of %d benchmarks regressed more than %.0f%% vs %s%s",
			regressions, len(verdicts), 100**maxRegression, *baselinePath, detail))
	}
	fmt.Printf("ok: %d benchmarks within %.0f%% of baseline\n", len(verdicts), 100**maxRegression)
}
