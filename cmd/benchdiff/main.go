// Command benchdiff is the CI bench-regression gate: it compares two result
// files and fails when any metric moved in its bad direction by more than
// the allowed fraction against the committed baseline. It understands two
// shapes, detected from the JSON itself:
//
//   - condor-bench output ({"benchmarks": [...]}): per-benchmark img/s
//     throughput, where lower is a regression;
//   - condor-loadgen output ("kind": "condor-loadgen" or
//     "condor-loadgen-sweep"): goodput and latency quantiles per offered
//     load, where goodput falling or latency/shed/errors rising regresses.
//
// Usage:
//
//	condor-bench -json BENCH_fabric.json
//	benchdiff -baseline BENCH_baseline.json -current BENCH_fabric.json -max-regression 0.25
//
//	condor-loadgen -rates 100,200 -json sweep.json
//	benchdiff -baseline sweep_baseline.json -current sweep.json
//
// The gate is deliberately loose (default 25%): shared CI runners are noisy,
// and the gate exists to catch algorithmic regressions — an accidental
// word-at-a-time fallback, a lock on the hot path — not single-digit drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strings"

	"condor/internal/loadgen"
)

// benchResult mirrors one row of the condor-bench JSON schema.
type benchResult struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	ImgPerS float64 `json:"img_per_s"`
	// ModelSpeedupX, on batch-streaming legs, is the modeled steady-state
	// speedup recorded by condor-bench for the host the run executed on.
	ModelSpeedupX float64 `json:"model_speedup_x,omitempty"`
}

// metricRow is the common currency both file shapes reduce to: one named
// figure plus the direction in which it gets worse.
type metricRow struct {
	Name        string
	Value       float64
	Unit        string
	LowerBetter bool // latency, sheds, errors; false for throughput
}

type resultFile struct {
	Rows []metricRow
}

// verdict is the comparison outcome for one baseline metric.
type verdict struct {
	Name        string
	Unit        string
	Baseline    float64
	Current     float64
	Delta       float64 // fractional change; sign interpreted via LowerBetter
	LowerBetter bool
	Regressed   bool
}

// compare checks every baseline metric against the current run. A metric
// missing from the current file is collected into the missing list — every
// absence is named, the rest of the comparison still runs, and the caller
// decides whether the gate fails (a renamed bench leg must not dodge the
// gate silently). Metrics only in the current file are ignored (new
// metrics need a baseline refresh, not a failure).
func compare(baseline, current resultFile, maxRegression float64) ([]verdict, []string, error) {
	cur := make(map[string]metricRow, len(current.Rows))
	for _, r := range current.Rows {
		cur[r.Name] = r
	}
	out := make([]verdict, 0, len(baseline.Rows))
	var missing []string
	for _, base := range baseline.Rows {
		c, ok := cur[base.Name]
		if !ok {
			missing = append(missing, base.Name)
			continue
		}
		v := verdict{
			Name: base.Name, Unit: base.Unit,
			Baseline: base.Value, Current: c.Value, LowerBetter: base.LowerBetter,
		}
		switch {
		case base.Value > 0:
			v.Delta = c.Value/base.Value - 1
			if base.LowerBetter {
				v.Regressed = v.Delta > maxRegression
			} else {
				v.Regressed = v.Delta < -maxRegression
			}
		case base.LowerBetter:
			// A zero baseline for sheds/errors/latency means "was clean":
			// staying at zero is fine, any appearance is a regression.
			if c.Value > 0 {
				v.Delta = math.Inf(1)
				v.Regressed = true
			}
		default:
			return nil, nil, fmt.Errorf("baseline metric %q has non-positive value %v", base.Name, base.Value)
		}
		out = append(out, v)
	}
	return out, missing, nil
}

// loadgenRows flattens one loadgen report into gate metrics, namespaced by
// the offered load so sweep points don't collide.
func loadgenRows(rep *loadgen.Report) []metricRow {
	prefix := fmt.Sprintf("loadgen@%grps/", rep.OfferedRPS)
	return []metricRow{
		{Name: prefix + "goodput_rps", Value: rep.GoodputRPS, Unit: "req/s"},
		{Name: prefix + "p50_ms", Value: rep.Latency.P50, Unit: "ms", LowerBetter: true},
		{Name: prefix + "p95_ms", Value: rep.Latency.P95, Unit: "ms", LowerBetter: true},
		{Name: prefix + "p99_ms", Value: rep.Latency.P99, Unit: "ms", LowerBetter: true},
		{Name: prefix + "deadline_miss", Value: float64(rep.DeadlineMiss), Unit: "req", LowerBetter: true},
		{Name: prefix + "shed", Value: float64(rep.Shed), Unit: "req", LowerBetter: true},
		{Name: prefix + "errors", Value: float64(rep.Errors), Unit: "req", LowerBetter: true},
	}
}

// speedupRows derives one gated metric per dtype-suffixed bench leg: the
// ratio of its throughput to the same leg without the suffix (the float32
// row). Keying the ratio itself means an int8 regression cannot hide behind
// a float32 win of the same magnitude — the gate compares relative speedups
// across runs, not just absolute img/s rows that could drift together.
func speedupRows(rows []metricRow) []metricRow {
	byName := make(map[string]float64, len(rows))
	for _, r := range rows {
		byName[r.Name] = r.Value
	}
	var out []metricRow
	for _, r := range rows {
		i := strings.Index(r.Name, "/dtype=")
		if i < 0 {
			continue
		}
		base, dtype := r.Name[:i], r.Name[i+len("/dtype="):]
		f32, ok := byName[base]
		if !ok || f32 <= 0 || r.Value <= 0 {
			continue
		}
		out = append(out, metricRow{
			Name:  base + "/" + dtype + "_speedup_x",
			Value: r.Value / f32,
			Unit:  "x",
		})
	}
	return out
}

// algoSpeedupRows derives one gated metric per algo-suffixed bench leg: the
// ratio of its throughput to the same leg with algo=direct (any /dtype=
// suffix stays on both sides, so the int8 gemm leg compares against the
// int8 direct leg). Like the dtype rows, gating the ratio keeps the
// non-direct lowerings' advantage from silently eroding.
func algoSpeedupRows(rows []metricRow) []metricRow {
	byName := make(map[string]float64, len(rows))
	for _, r := range rows {
		byName[r.Name] = r.Value
	}
	var out []metricRow
	for _, r := range rows {
		i := strings.Index(r.Name, "/algo=")
		if i < 0 {
			continue
		}
		rest := r.Name[i+len("/algo="):]
		algo := rest
		if j := strings.Index(rest, "/"); j >= 0 {
			algo = rest[:j]
		}
		if algo == "direct" {
			continue
		}
		direct := strings.Replace(r.Name, "/algo="+algo, "/algo=direct", 1)
		dv, ok := byName[direct]
		if !ok || dv <= 0 || r.Value <= 0 {
			continue
		}
		out = append(out, metricRow{
			Name:  strings.Replace(r.Name, "/algo="+algo, "", 1) + "/" + algo + "_speedup_x",
			Value: r.Value / dv,
			Unit:  "x",
		})
	}
	return out
}

// pipelineRows derives the utilization-gate metric from each batch-streaming
// leg pair: pipeline_efficiency = (batch=8 img/s ÷ batch=1 img/s) ÷ the
// modeled steady-state speedup condor-bench recorded for the host it ran on.
// Normalizing by the model makes the row portable across runner core counts
// — a perfectly-streaming fabric scores 1.0 on any host — so the gate
// catches a fabric that stopped pipelining (a drain snuck back into the
// session path) rather than a slow runner.
func pipelineRows(bs []benchResult) []metricRow {
	byName := make(map[string]float64, len(bs))
	for _, b := range bs {
		byName[b.Name] = b.ImgPerS
	}
	var out []metricRow
	for _, b := range bs {
		if !strings.Contains(b.Name, "/batch=8") || b.ModelSpeedupX <= 0 {
			continue
		}
		v1 := byName[strings.Replace(b.Name, "/batch=8", "/batch=1", 1)]
		if v1 <= 0 || b.ImgPerS <= 0 {
			continue
		}
		out = append(out, metricRow{
			Name:  strings.Replace(b.Name, "/batch=8", "/pipeline_efficiency", 1),
			Value: (b.ImgPerS / v1) / b.ModelSpeedupX,
			Unit:  "ratio",
		})
	}
	return out
}

// filterRows keeps the rows whose name matches re.
func filterRows(rows []metricRow, re *regexp.Regexp) []metricRow {
	var out []metricRow
	for _, r := range rows {
		if re.MatchString(r.Name) {
			out = append(out, r)
		}
	}
	return out
}

// readResults loads either file shape, sniffing the kind tag.
func readResults(path string) (resultFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return resultFile{}, err
	}
	var probe struct {
		Kind       string        `json:"kind"`
		Benchmarks []benchResult `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return resultFile{}, fmt.Errorf("%s: %w", path, err)
	}
	var f resultFile
	switch probe.Kind {
	case loadgen.ReportKind:
		var rep loadgen.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return resultFile{}, fmt.Errorf("%s: %w", path, err)
		}
		f.Rows = loadgenRows(&rep)
	case loadgen.SweepKind:
		var sweep loadgen.Sweep
		if err := json.Unmarshal(data, &sweep); err != nil {
			return resultFile{}, fmt.Errorf("%s: %w", path, err)
		}
		for _, rep := range sweep.Runs {
			f.Rows = append(f.Rows, loadgenRows(rep)...)
		}
	case "":
		for _, b := range probe.Benchmarks {
			f.Rows = append(f.Rows, metricRow{Name: b.Name, Value: b.ImgPerS, Unit: "img/s"})
		}
		// Both derived sets come from the raw img/s rows — deriving one from
		// the other would gate meaningless ratio-of-ratio rows.
		raw := f.Rows
		f.Rows = append(f.Rows, speedupRows(raw)...)
		f.Rows = append(f.Rows, algoSpeedupRows(raw)...)
		f.Rows = append(f.Rows, pipelineRows(probe.Benchmarks)...)
	default:
		return resultFile{}, fmt.Errorf("%s: unknown result kind %q", path, probe.Kind)
	}
	if len(f.Rows) == 0 {
		return resultFile{}, fmt.Errorf("%s: no metrics", path)
	}
	return f, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline results")
	currentPath := flag.String("current", "BENCH_fabric.json", "fresh condor-bench -json or condor-loadgen -json results")
	maxRegression := flag.Float64("max-regression", 0.25, "largest tolerated fractional move in a metric's bad direction")
	allowMissing := flag.Bool("allow-missing", false, "warn (instead of fail) when a baseline metric is absent from the current run")
	only := flag.String("only", "", "regexp restricting the gate to matching metric names (e.g. pipeline_efficiency), so one run can be diffed under several thresholds")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	baseline, err := readResults(*baselinePath)
	if err != nil {
		fail(err)
	}
	current, err := readResults(*currentPath)
	if err != nil {
		fail(err)
	}
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fail(fmt.Errorf("-only: %w", err))
		}
		baseline.Rows = filterRows(baseline.Rows, re)
		current.Rows = filterRows(current.Rows, re)
		if len(baseline.Rows) == 0 {
			fail(fmt.Errorf("-only %q matches no baseline metric", *only))
		}
	}
	verdicts, missing, err := compare(baseline, current, *maxRegression)
	if err != nil {
		fail(err)
	}
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: metric %q is in the baseline but missing from the current run (renamed or dropped?)\n", name)
	}

	regressions := 0
	fmt.Printf("%-40s %8s %14s %14s %9s\n", "metric", "unit", "baseline", "current", "delta")
	for _, v := range verdicts {
		mark := ""
		if v.Regressed {
			mark = "  << REGRESSION"
			regressions++
		}
		fmt.Printf("%-40s %8s %14.2f %14.2f %8.1f%%%s\n", v.Name, v.Unit, v.Baseline, v.Current, 100*v.Delta, mark)
	}
	if regressions > 0 {
		// Name each offender with its delta so the CI failure line is
		// actionable without digging through the job log for the table.
		detail := ""
		for _, v := range verdicts {
			if v.Regressed {
				detail += fmt.Sprintf("\n  %s: %.2f -> %.2f %s (%.1f%%)", v.Name, v.Baseline, v.Current, v.Unit, 100*v.Delta)
			}
		}
		fail(fmt.Errorf("%d of %d metrics regressed more than %.0f%% vs %s%s",
			regressions, len(verdicts), 100**maxRegression, *baselinePath, detail))
	}
	if len(missing) > 0 && !*allowMissing {
		// Absent legs fail the gate by default: a renamed benchmark would
		// otherwise retire its own baseline and dodge the comparison. Pass
		// -allow-missing while a rename lands, then refresh the baseline.
		fail(fmt.Errorf("%d baseline metric(s) missing from the current run: %s (rename the leg in the baseline or pass -allow-missing)",
			len(missing), strings.Join(missing, ", ")))
	}
	fmt.Printf("ok: %d metrics within %.0f%% of baseline\n", len(verdicts), 100**maxRegression)
}
