// Command condor-sim runs inference batches on a built Condor accelerator
// using the functional dataflow fabric, reporting both the host-measured
// simulation time and the modeled device time (cycles at the achieved
// clock). It accepts a compiled xclbin plus weights, or one of the built-in
// paper models.
//
// Usage:
//
//	condor-sim -model tc1 -batch 16
//	condor-sim -xclbin build/LeNet.xclbin -weights build/LeNet.cndw -batch 8
//	condor-sim -model lenet -sweep          # Figure 5-style batch sweep
//
// Observability: -trace writes the run as Chrome trace-event JSON (load it
// in chrome://tracing or Perfetto; one lane per fabric element, one span per
// layer per image), -metrics dumps the run's counters in Prometheus text
// form, and -check-trace validates a previously written trace file:
//
//	condor-sim -model tc1 -batch 4 -trace trace.json -metrics -
//	condor-sim -check-trace trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"condor"
	"condor/internal/bitstream"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/models"
	"condor/internal/nn"
	"condor/internal/obs"
	"condor/internal/perf"
	"condor/internal/tensor"
)

func main() {
	model := flag.String("model", "", "built-in model: tc1 | lenet")
	xclbinPath := flag.String("xclbin", "", "compiled kernel binary")
	weightsPath := flag.String("weights", "", "Condor weights file (.cndw)")
	batch := flag.Int("batch", 8, "images per batch")
	sweep := flag.Bool("sweep", false, "run the Figure 5 batch-size sweep instead of one batch")
	seed := flag.Int64("seed", 42, "input generator seed")
	tracePath := flag.String("trace", "", "write the run as Chrome trace-event JSON to this file")
	metricsPath := flag.String("metrics", "", `write the run's counters in Prometheus text form to this file ("-" for stdout)`)
	checkTrace := flag.String("check-trace", "", "validate a trace-event JSON file and exit")
	flag.Parse()

	if *checkTrace != "" {
		if err := runCheckTrace(*checkTrace); err != nil {
			fmt.Fprintln(os.Stderr, "condor-sim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*model, *xclbinPath, *weightsPath, *batch, *sweep, *seed, *tracePath, *metricsPath); err != nil {
		fmt.Fprintln(os.Stderr, "condor-sim:", err)
		os.Exit(1)
	}
}

// runCheckTrace validates that path holds loadable trace-event JSON — the CI
// gate behind `condor-sim -trace` output.
func runCheckTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	n, err := obs.ValidateChromeTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: valid trace-event JSON, %d events\n", path, n)
	return nil
}

func run(model, xclbinPath, weightsPath string, batch int, sweep bool, seed int64, tracePath, metricsPath string) error {
	var spec *dataflow.Spec
	var ws *condorir.WeightSet
	var freq float64

	switch {
	case model != "":
		var ir *condorir.Network
		var err error
		switch model {
		case "tc1":
			ir, ws, err = models.TC1()
		case "lenet":
			ir, ws, err = models.LeNet()
		default:
			return fmt.Errorf("unknown model %q (want tc1 or lenet)", model)
		}
		if err != nil {
			return err
		}
		b, err := condor.New().BuildAccelerator(condor.Input{IR: ir, Weights: ws})
		if err != nil {
			return err
		}
		spec, freq = b.Spec, b.Meta.AchievedMHz
	case xclbinPath != "":
		data, err := os.ReadFile(xclbinPath)
		if err != nil {
			return err
		}
		x, err := bitstream.ReadXclbin(data)
		if err != nil {
			return err
		}
		if weightsPath == "" {
			return fmt.Errorf("-weights is required with -xclbin")
		}
		wf, err := os.Open(weightsPath)
		if err != nil {
			return err
		}
		ws, err = condorir.ReadWeights(wf)
		wf.Close()
		if err != nil {
			return err
		}
		spec, freq = x.Spec, x.Meta.AchievedMHz
	default:
		return fmt.Errorf("provide -model or -xclbin/-weights")
	}

	acc, err := dataflow.Instantiate(spec, ws)
	if err != nil {
		return err
	}
	stages := perf.Stages(spec)
	fmt.Printf("%s: %d PEs, input %s, %0.f MHz\n", spec.Name, len(spec.PEs), spec.Input, freq)

	if sweep {
		if tracePath != "" || metricsPath != "" {
			return fmt.Errorf("-trace/-metrics apply to a single batch run, not -sweep")
		}
		fmt.Printf("%8s %16s %16s\n", "batch", "device ms/img", "device img/s")
		for _, bsz := range []int{1, 2, 4, 8, 16, 32, 64} {
			cycles := perf.SimulateBatch(stages, bsz)
			mean := perf.CyclesToMs(cycles, freq) / float64(bsz)
			fmt.Printf("%8d %16.4f %16.1f\n", bsz, mean, 1000/mean)
		}
		return nil
	}

	var tr *obs.Trace
	if tracePath != "" {
		tr = obs.NewTrace()
		acc.SetTracer(tr)
	}
	imgs := makeInputs(spec.Input, batch, seed)
	start := time.Now()
	outs, stats, err := acc.Run(imgs)
	if err != nil {
		return err
	}
	host := time.Since(start)
	cycles := perf.SimulateBatch(stages, batch)
	deviceMs := perf.CyclesToMs(cycles, freq)
	fmt.Printf("batch %d: host sim %v, modeled device %.4f ms (%.4f ms/image)\n",
		batch, host.Round(time.Millisecond), deviceMs, deviceMs/float64(batch))
	fmt.Printf("DDR traffic: %.1f KiB read, %.1f KiB written\n",
		float64(stats.DRAM.BytesRead)/1024, float64(stats.DRAM.BytesWritten)/1024)
	for i, out := range outs {
		if i >= 4 {
			fmt.Printf("  ... %d more\n", len(outs)-4)
			break
		}
		fmt.Printf("  image %d -> class %d\n", i, out.ArgMax())
	}

	if tr != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		err = tr.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		spans := 0
		for _, tk := range tr.Tracks() {
			spans += len(tk.Spans())
		}
		fmt.Printf("trace: %d spans across %d tracks -> %s (open in chrome://tracing or Perfetto)\n",
			spans, len(tr.Tracks()), tracePath)
	}
	if metricsPath != "" {
		reg := obs.NewRegistry()
		stats.Publish(reg)
		text := reg.TextSnapshot()
		if metricsPath == "-" {
			fmt.Print(text)
		} else if err := os.WriteFile(metricsPath, []byte(text), 0o644); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	return nil
}

func makeInputs(shape nn.Shape, batch int, seed int64) []*tensor.Tensor {
	switch {
	case shape.Height == 16 && shape.Channels == 1:
		return models.USPSImages(batch, seed)
	case shape.Height == 28 && shape.Channels == 1:
		return models.MNISTImages(batch, seed)
	default:
		out := make([]*tensor.Tensor, batch)
		for i := range out {
			t := tensor.New(shape.Channels, shape.Height, shape.Width)
			for j := range t.Data() {
				t.Data()[j] = float32((i+j)%7) / 7
			}
			out[i] = t
		}
		return out
	}
}
