// Command condor-loadgen is the open-loop load generator for the fleet
// tier: it offers requests to a condor-fleet router (or a single
// condor-serve node) at a configured arrival rate, stamps priority classes
// and deadlines, and reports the latency CDF, goodput-vs-offered-load and
// the shed/error breakdown as a text table and optional JSON.
//
// One run at a fixed offered load:
//
//	condor-loadgen -target http://127.0.0.1:8790 -rate 200 -duration 10s \
//	    -deadline-ms 100 -high-frac 0.25
//
// Sweep offered load to trace the goodput curve, appending JSON for
// benchdiff:
//
//	condor-loadgen -target http://127.0.0.1:8790 -rates 50,100,200,400 \
//	    -duration 5s -json sweep.json
//
// The generator learns the fleet's input geometry from GET /healthz and
// exits non-zero if any run loses a request to an unclassified outcome
// (the zero-silent-drop gate CI leans on).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"condor/internal/loadgen"
	"condor/internal/serve"
)

func main() {
	var (
		target     = flag.String("target", "http://127.0.0.1:8790", "router or node base URL")
		rate       = flag.Float64("rate", 100, "offered load in req/s")
		rates      = flag.String("rates", "", "comma-separated req/s sweep (overrides -rate)")
		duration   = flag.Duration("duration", 10*time.Second, "arrival window per run")
		arrival    = flag.String("arrival", loadgen.ArrivalPoisson, "arrival process: poisson | fixed")
		deadlineMs = flag.Float64("deadline-ms", 0, "per-request deadline in ms (0 disables)")
		highFrac   = flag.Float64("high-frac", 1.0, "fraction of requests sent high-priority")
		model      = flag.String("model", "", "X-Condor-Model routing key (empty uses the router default)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request timeout when no deadline applies")
		seed       = flag.Int64("seed", 1, "arrival-process RNG seed")
		jsonPath   = flag.String("json", "", "write the report JSON here ('-' for stdout)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	body, err := probeBody(ctx, *target)
	if err != nil {
		fatalf("probe %s/healthz: %v", *target, err)
	}

	points := []float64{*rate}
	if *rates != "" {
		points = points[:0]
		for _, f := range strings.Split(*rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v <= 0 {
				fatalf("bad -rates entry %q", f)
			}
			points = append(points, v)
		}
	}

	var runs []*loadgen.Report
	failed := false
	for _, rps := range points {
		rep, err := loadgen.Run(ctx, loadgen.Config{
			TargetURL:    *target,
			RateRPS:      rps,
			Duration:     *duration,
			Arrival:      *arrival,
			Body:         body,
			DeadlineMs:   *deadlineMs,
			HighFraction: *highFrac,
			Model:        *model,
			Timeout:      *timeout,
			Seed:         *seed,
		})
		if rep != nil {
			rep.WriteTable(os.Stdout)
			fmt.Println()
			runs = append(runs, rep)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "condor-loadgen: %v\n", err)
			failed = true
		}
		if ctx.Err() != nil {
			break
		}
	}
	if len(runs) == 0 {
		fatalf("no runs completed")
	}

	if *jsonPath != "" {
		var doc any = runs[0]
		if len(runs) > 1 {
			doc = loadgen.Sweep{Kind: loadgen.SweepKind, Runs: runs}
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatalf("marshal report: %v", err)
		}
		data = append(data, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatalf("write %s: %v", *jsonPath, err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// probeBody fetches the target's /healthz and builds a zero-filled image of
// the advertised input shape.
func probeBody(ctx context.Context, target string) ([]byte, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s (is the fleet registered and ready?)", resp.Status)
	}
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	vol := h.Input.Volume()
	if vol <= 0 {
		return nil, fmt.Errorf("target reports empty input shape %+v", h.Input)
	}
	return json.Marshal(serve.InferRequest{Image: make([]float32, vol)})
}

func fatalf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "condor-loadgen: "+format+"\n", a...)
	os.Exit(1)
}
