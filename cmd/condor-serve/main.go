// Command condor-serve is the inference serving frontend of the Condor
// backend: it builds an accelerator for a catalogued model, deploys it onto
// a pool of backends — local boards and/or F1 slots of a cloud endpoint
// such as cmd/awsmock — and serves single-image inference over HTTP with
// dynamic batching, admission control and least-loaded scheduling.
//
// Serve a pool of two local boards plus the slots of an F1 instance:
//
//	awsmock -addr 127.0.0.1:8780 &
//	condor-serve -addr 127.0.0.1:8781 -model tc1 -local 2 \
//	    -endpoint http://127.0.0.1:8780 -instance-type f1.4xlarge -slots 2
//
// Endpoints:
//
//	POST /infer   {"image":[...]}  single NCHW image, row-major float32
//	GET  /healthz                  liveness + accepted input shape
//	GET  /readyz                   readiness: 503 while the pool is still
//	                               warming and again once draining begins
//	GET  /statsz                   queue depth, batch histogram, utilization
//	GET  /metricsz                 the same figures in Prometheus text form,
//	                               plus per-device and cloud-client counters
//
// The listener comes up before the backend pool builds, answering /healthz
// (liveness) immediately while /readyz stays 503 — a fleet router admits the
// node only once the pool is warm. With -fleet the node registers itself
// with a condor-fleet router when ready and deregisters on drain:
//
//	condor-serve -addr 127.0.0.1:8781 -fleet http://127.0.0.1:8790
//
// The probe mode drives one round against a running server and exits
// non-zero on failure (the CI smoke test):
//
//	condor-serve -probe http://127.0.0.1:8781
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"condor"
	"condor/internal/aws"
	"condor/internal/condorir"
	"condor/internal/models"
	"condor/internal/obs"
	"condor/internal/quant"
	"condor/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8781", "HTTP listen address")
		model       = flag.String("model", "tc1", "model to serve: tc1 | lenet")
		local       = flag.Int("local", 1, "number of local boards to program")
		localBoard  = flag.String("local-board", "ku115", "board id for local deployments")
		cus         = flag.Int("cus", 1, "compute units (replicated kernel instances) per local board")
		dtype       = flag.String("dtype", "float32", "fabric numeric format: float32 | int16 | int8 (int8 serves on the packed datapath)")
		endpoint    = flag.String("endpoint", "", "cloud endpoint URL (e.g. awsmock); empty disables the cloud pool")
		bucket      = flag.String("bucket", "condor-serve", "S3 bucket for cloud deployments")
		instType    = flag.String("instance-type", "f1.2xlarge", "F1 instance type for the cloud pool")
		slots       = flag.Int("slots", 1, "F1 slots to program and schedule")
		maxBatch    = flag.Int("max-batch", 8, "largest coalesced batch")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "max wait for a batch to fill")
		queueDepth  = flag.Int("queue", 64, "admission queue bound (backpressure beyond it)")
		reqTimeout  = flag.Duration("request-timeout", 2*time.Second, "per-request serving deadline")
		probe       = flag.String("probe", "", "probe a running condor-serve at this URL and exit")
		fleetURL    = flag.String("fleet", "", "condor-fleet router to register with once ready (empty disables)")
		advertise   = flag.String("advertise", "", "URL the router reaches this node at (default http://<addr>)")
		traceReq    = flag.String("trace-requests", "", "write a Chrome trace of per-request spans here on shutdown")
		pprofOn     = flag.Bool("pprof", false, "expose Go profiling under /debug/pprof (opt-in; do not enable on untrusted networks)")
	)
	flag.Parse()

	if *probe != "" {
		if err := runProbe(*probe); err != nil {
			fmt.Fprintln(os.Stderr, "condor-serve: probe:", err)
			os.Exit(1)
		}
		fmt.Println("probe ok")
		return
	}
	opts := serveOptions{
		addr: *addr, model: *model,
		local: *local, localBoard: *localBoard, cus: *cus, dtype: *dtype,
		endpoint: *endpoint, bucket: *bucket, instType: *instType, slots: *slots,
		maxBatch: *maxBatch, batchWindow: *batchWindow, queueDepth: *queueDepth,
		reqTimeout: *reqTimeout,
		fleetURL:   *fleetURL, advertise: *advertise, tracePath: *traceReq,
		pprofOn: *pprofOn,
	}
	if opts.advertise == "" {
		opts.advertise = "http://" + opts.addr
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "condor-serve:", err)
		os.Exit(1)
	}
}

// serveOptions carries the resolved flag set into run.
type serveOptions struct {
	addr, model         string
	local               int
	localBoard          string
	cus                 int
	dtype               string
	endpoint, bucket    string
	instType            string
	slots               int
	maxBatch            int
	batchWindow         time.Duration
	queueDepth          int
	reqTimeout          time.Duration
	fleetURL, advertise string
	tracePath           string
	pprofOn             bool
}

func modelPrecision(dtype string) (quant.Precision, error) {
	switch dtype {
	case "", "float32":
		return quant.Float32, nil
	case "int16":
		return quant.Int16, nil
	case "int8":
		return quant.Int8, nil
	default:
		return quant.Float32, fmt.Errorf("unknown dtype %q (float32 | int16 | int8)", dtype)
	}
}

func modelIR(model string) (*condorir.Network, *condorir.WeightSet, error) {
	switch model {
	case "tc1":
		return models.TC1()
	case "lenet":
		return models.LeNet()
	default:
		return nil, nil, fmt.Errorf("unknown model %q (tc1 | lenet)", model)
	}
}

// swapHandler atomically replaces its delegate, so the listener can come up
// with a warming handler and swap in the real mux once the pool is built.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) set(h http.Handler) { s.h.Store(h) }
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

// warmingHandler answers while the backend pool is still building: liveness
// succeeds (the process is up), readiness refuses (no capacity yet) — the
// split a fleet router needs to avoid routing to a cold node.
func warmingHandler(input serve.InputShape) http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(v) //nolint:errcheck
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, serve.HealthResponse{Status: "warming", Input: input})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Error string `json:"error"`
		}{"warming: backend pool is still building"})
	})
	return mux
}

func run(o serveOptions) error {
	if o.local <= 0 && o.endpoint == "" {
		return fmt.Errorf("nothing to serve: need -local > 0 and/or -endpoint")
	}
	// The input geometry is known from the catalogue before any backend
	// exists; the warming handler advertises it so probes can pre-build
	// request bodies.
	ir, _, err := modelIR(o.model)
	if err != nil {
		return err
	}
	prec, err := modelPrecision(o.dtype)
	if err != nil {
		return err
	}
	input := serve.InputShape{Channels: ir.Input.Channels, Height: ir.Input.Height, Width: ir.Input.Width}

	// Listen before building the pool: liveness is immediate, readiness
	// arrives with the swap below.
	swap := &swapHandler{}
	swap.set(warmingHandler(input))
	httpSrv := &http.Server{
		Addr:              o.addr,
		Handler:           swap,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("listening on http://%s (warming: pool build in progress)\n", o.addr)

	f := &condor.Framework{Logf: func(format string, a ...any) {
		fmt.Printf("[condor] "+format+"\n", a...)
	}}

	var pool []serve.Backend

	// Local boards: one build for the on-premise board, one deployment per
	// device.
	if o.local > 0 {
		ir, ws, err := modelIR(o.model)
		if err != nil {
			return err
		}
		build, err := f.BuildAccelerator(condor.Input{IR: ir, Weights: ws, Board: o.localBoard, Precision: prec})
		if err != nil {
			return fmt.Errorf("local build: %w", err)
		}
		for i := 0; i < o.local; i++ {
			dep, err := f.DeployLocalCUs(build, o.cus)
			if err != nil {
				return fmt.Errorf("local deployment %d: %w", i, err)
			}
			if o.cus > 1 {
				// Each replicated kernel instance joins the pool as its own
				// backend, so the scheduler keeps cus batches in flight per card.
				for _, cb := range dep.CUBackends() {
					fmt.Printf("backend pool += local board %s (%s)\n", cb.ID(), o.localBoard)
					pool = append(pool, cb)
				}
			} else {
				fmt.Printf("backend pool += local board %s (%s)\n", dep.ID(), o.localBoard)
				pool = append(pool, dep)
			}
		}
	}

	// Cloud slots: a separate F1 build goes through S3 → AFI → instance,
	// then every programmed slot joins the pool as its own backend.
	if o.endpoint != "" {
		ir, ws, err := modelIR(o.model)
		if err != nil {
			return err
		}
		build, err := f.BuildAccelerator(condor.Input{IR: ir, Weights: ws, Board: models.F1Board, Precision: prec})
		if err != nil {
			return fmt.Errorf("cloud build: %w", err)
		}
		dep, err := f.DeployCloud(build, condor.CloudConfig{
			Endpoint: o.endpoint, License: aws.LicenseFromAMI(),
			Bucket: o.bucket, InstanceType: o.instType, Slots: o.slots,
		})
		if err != nil {
			return fmt.Errorf("cloud deployment: %w", err)
		}
		defer dep.Terminate() //nolint:errcheck
		for _, sb := range dep.SlotBackends() {
			fmt.Printf("backend pool += F1 slot %s\n", sb.ID())
			pool = append(pool, sb)
		}
	}

	srv, err := serve.New(serve.Config{
		Backends:    pool,
		MaxBatch:    o.maxBatch,
		BatchWindow: o.batchWindow,
		QueueDepth:  o.queueDepth,
	})
	if err != nil {
		return err
	}

	// Prometheus exposition: the serving pipeline's figures plus the
	// per-device execution counters and cloud-client retry accounting of
	// every pool member, all read at scrape time.
	reg := obs.NewRegistry()
	serve.RegisterMetrics(reg, srv)
	condor.RegisterDeploymentMetrics(reg, pool...)

	var handlerOpts []serve.HandlerOption
	var trace *obs.Trace
	if o.tracePath != "" {
		trace = obs.NewTrace()
		handlerOpts = append(handlerOpts, serve.WithRequestTracer(trace))
	}

	mux := http.NewServeMux()
	mux.Handle("/", serve.NewHandler(srv, input, o.reqTimeout, handlerOpts...))
	mux.Handle("/metricsz", reg.Handler())
	if o.pprofOn {
		// The profiling endpoints are registered explicitly (the server does
		// not use http.DefaultServeMux, so the net/http/pprof side-effect
		// import alone would expose nothing).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("pprof enabled on http://%s/debug/pprof/\n", o.addr)
	}
	swap.set(mux)
	fmt.Printf("serving %s on http://%s with %d backends (max batch %d, window %v, queue %d)\n",
		o.model, o.addr, len(pool), o.maxBatch, o.batchWindow, o.queueDepth)

	// Fleet membership: announce readiness to the router, and make the
	// departure explicit before draining so the ring stops routing here
	// without waiting for probe eviction.
	if o.fleetURL != "" {
		if err := fleetRegistration(o.fleetURL, "/register", o.advertise); err != nil {
			return fmt.Errorf("fleet registration: %w", err)
		}
		fmt.Printf("registered with fleet router %s as %s\n", o.fleetURL, o.advertise)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("\n%v: draining in-flight requests\n", s)
	}
	if o.fleetURL != "" {
		if err := fleetRegistration(o.fleetURL, "/deregister", o.advertise); err != nil {
			fmt.Printf("fleet deregistration failed (continuing drain): %v\n", err)
		} else {
			fmt.Printf("deregistered from fleet router %s\n", o.fleetURL)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Printf("drained: %d completed, %d rejected, %d expired, %d failed across %d batches\n",
		st.Completed, st.Rejected, st.Expired, st.Failed, st.Batches)
	if trace != nil {
		if err := writeTrace(trace, o.tracePath); err != nil {
			return fmt.Errorf("write request trace: %w", err)
		}
		fmt.Printf("request trace written to %s\n", o.tracePath)
	}
	return nil
}

// fleetRegistration POSTs this node's advertised URL to the router.
func fleetRegistration(router, path, advertise string) error {
	body, err := json.Marshal(struct {
		URL string `json:"url"`
	}{advertise})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Post(router+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s returned %s: %s", router+path, resp.Status, msg)
	}
	return nil
}

// writeTrace exports the per-request spans as a Chrome trace file.
func writeTrace(trace *obs.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runProbe exercises a running server once: health, one inference, stats.
func runProbe(base string) error {
	client := &http.Client{Timeout: 10 * time.Second}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	var health serve.HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("healthz decode: %w", err)
	}
	if health.Status != "ok" || health.Input.Volume() == 0 {
		return fmt.Errorf("unhealthy server: %+v", health)
	}

	img := make([]float32, health.Input.Volume())
	for i := range img {
		img[i] = float32(i%7) / 7
	}
	body, err := json.Marshal(serve.InferRequest{Image: img})
	if err != nil {
		return err
	}
	resp, err = client.Post(base+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /infer: status %s", resp.Status)
	}
	var infer serve.InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&infer); err != nil {
		return fmt.Errorf("infer decode: %w", err)
	}
	if len(infer.Output) == 0 {
		return fmt.Errorf("empty inference output")
	}
	fmt.Printf("inferred: argmax %d over %d classes, modeled kernel %.3f ms\n",
		infer.Argmax, len(infer.Output), infer.KernelMs)

	resp, err = client.Get(base + "/statsz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var stats serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return fmt.Errorf("statsz decode: %w", err)
	}
	if stats.Completed == 0 {
		return fmt.Errorf("statsz reports no completed requests after a successful inference")
	}
	fmt.Printf("stats: %d completed, %d batches, %d backends\n",
		stats.Completed, stats.Batches, len(stats.Backends))

	resp, err = client.Get(base + "/metricsz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metricsz: status %s", resp.Status)
	}
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(resp.Body); err != nil {
		return fmt.Errorf("metricsz read: %w", err)
	}
	if !bytes.Contains(metrics.Bytes(), []byte("condor_serve_requests_total")) {
		return fmt.Errorf("metricsz exposition missing condor_serve_requests_total:\n%s", metrics.String())
	}
	fmt.Printf("metrics: %d bytes of Prometheus exposition\n", metrics.Len())
	return nil
}
