// Command condor-serve is the inference serving frontend of the Condor
// backend: it builds an accelerator for a catalogued model, deploys it onto
// a pool of backends — local boards and/or F1 slots of a cloud endpoint
// such as cmd/awsmock — and serves single-image inference over HTTP with
// dynamic batching, admission control and least-loaded scheduling.
//
// Serve a pool of two local boards plus the slots of an F1 instance:
//
//	awsmock -addr 127.0.0.1:8780 &
//	condor-serve -addr 127.0.0.1:8781 -model tc1 -local 2 \
//	    -endpoint http://127.0.0.1:8780 -instance-type f1.4xlarge -slots 2
//
// Endpoints:
//
//	POST /infer   {"image":[...]}  single NCHW image, row-major float32
//	GET  /healthz                  readiness + accepted input shape
//	GET  /statsz                   queue depth, batch histogram, utilization
//	GET  /metricsz                 the same figures in Prometheus text form,
//	                               plus per-device and cloud-client counters
//
// The probe mode drives one round against a running server and exits
// non-zero on failure (the CI smoke test):
//
//	condor-serve -probe http://127.0.0.1:8781
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"condor"
	"condor/internal/aws"
	"condor/internal/condorir"
	"condor/internal/models"
	"condor/internal/obs"
	"condor/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8781", "HTTP listen address")
		model       = flag.String("model", "tc1", "model to serve: tc1 | lenet")
		local       = flag.Int("local", 1, "number of local boards to program")
		localBoard  = flag.String("local-board", "ku115", "board id for local deployments")
		cus         = flag.Int("cus", 1, "compute units (replicated kernel instances) per local board")
		endpoint    = flag.String("endpoint", "", "cloud endpoint URL (e.g. awsmock); empty disables the cloud pool")
		bucket      = flag.String("bucket", "condor-serve", "S3 bucket for cloud deployments")
		instType    = flag.String("instance-type", "f1.2xlarge", "F1 instance type for the cloud pool")
		slots       = flag.Int("slots", 1, "F1 slots to program and schedule")
		maxBatch    = flag.Int("max-batch", 8, "largest coalesced batch")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "max wait for a batch to fill")
		queueDepth  = flag.Int("queue", 64, "admission queue bound (backpressure beyond it)")
		reqTimeout  = flag.Duration("request-timeout", 2*time.Second, "per-request serving deadline")
		probe       = flag.String("probe", "", "probe a running condor-serve at this URL and exit")
		pprofOn     = flag.Bool("pprof", false, "expose Go profiling under /debug/pprof (opt-in; do not enable on untrusted networks)")
	)
	flag.Parse()

	if *probe != "" {
		if err := runProbe(*probe); err != nil {
			fmt.Fprintln(os.Stderr, "condor-serve: probe:", err)
			os.Exit(1)
		}
		fmt.Println("probe ok")
		return
	}
	if err := run(*addr, *model, *local, *localBoard, *cus, *endpoint, *bucket, *instType,
		*slots, *maxBatch, *batchWindow, *queueDepth, *reqTimeout, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "condor-serve:", err)
		os.Exit(1)
	}
}

func modelIR(model string) (*condorir.Network, *condorir.WeightSet, error) {
	switch model {
	case "tc1":
		return models.TC1()
	case "lenet":
		return models.LeNet()
	default:
		return nil, nil, fmt.Errorf("unknown model %q (tc1 | lenet)", model)
	}
}

func run(addr, model string, local int, localBoard string, cus int, endpoint, bucket, instType string,
	slots, maxBatch int, batchWindow time.Duration, queueDepth int, reqTimeout time.Duration, pprofOn bool) error {
	if local <= 0 && endpoint == "" {
		return fmt.Errorf("nothing to serve: need -local > 0 and/or -endpoint")
	}
	f := &condor.Framework{Logf: func(format string, a ...any) {
		fmt.Printf("[condor] "+format+"\n", a...)
	}}

	var pool []serve.Backend

	// Local boards: one build for the on-premise board, one deployment per
	// device.
	if local > 0 {
		ir, ws, err := modelIR(model)
		if err != nil {
			return err
		}
		build, err := f.BuildAccelerator(condor.Input{IR: ir, Weights: ws, Board: localBoard})
		if err != nil {
			return fmt.Errorf("local build: %w", err)
		}
		for i := 0; i < local; i++ {
			dep, err := f.DeployLocalCUs(build, cus)
			if err != nil {
				return fmt.Errorf("local deployment %d: %w", i, err)
			}
			if cus > 1 {
				// Each replicated kernel instance joins the pool as its own
				// backend, so the scheduler keeps cus batches in flight per card.
				for _, cb := range dep.CUBackends() {
					fmt.Printf("backend pool += local board %s (%s)\n", cb.ID(), localBoard)
					pool = append(pool, cb)
				}
			} else {
				fmt.Printf("backend pool += local board %s (%s)\n", dep.ID(), localBoard)
				pool = append(pool, dep)
			}
		}
	}

	// Cloud slots: a separate F1 build goes through S3 → AFI → instance,
	// then every programmed slot joins the pool as its own backend.
	if endpoint != "" {
		ir, ws, err := modelIR(model)
		if err != nil {
			return err
		}
		build, err := f.BuildAccelerator(condor.Input{IR: ir, Weights: ws, Board: models.F1Board})
		if err != nil {
			return fmt.Errorf("cloud build: %w", err)
		}
		dep, err := f.DeployCloud(build, condor.CloudConfig{
			Endpoint: endpoint, License: aws.LicenseFromAMI(),
			Bucket: bucket, InstanceType: instType, Slots: slots,
		})
		if err != nil {
			return fmt.Errorf("cloud deployment: %w", err)
		}
		defer dep.Terminate() //nolint:errcheck
		for _, sb := range dep.SlotBackends() {
			fmt.Printf("backend pool += F1 slot %s\n", sb.ID())
			pool = append(pool, sb)
		}
	}

	srv, err := serve.New(serve.Config{
		Backends:    pool,
		MaxBatch:    maxBatch,
		BatchWindow: batchWindow,
		QueueDepth:  queueDepth,
	})
	if err != nil {
		return err
	}

	// Every pool member serves the same network, so the HTTP tier validates
	// requests against the model's input geometry.
	ir, _, err := modelIR(model)
	if err != nil {
		return err
	}
	input := serve.InputShape{Channels: ir.Input.Channels, Height: ir.Input.Height, Width: ir.Input.Width}

	// Prometheus exposition: the serving pipeline's figures plus the
	// per-device execution counters and cloud-client retry accounting of
	// every pool member, all read at scrape time.
	reg := obs.NewRegistry()
	serve.RegisterMetrics(reg, srv)
	condor.RegisterDeploymentMetrics(reg, pool...)

	mux := http.NewServeMux()
	mux.Handle("/", serve.NewHandler(srv, input, reqTimeout))
	mux.Handle("/metricsz", reg.Handler())
	if pprofOn {
		// The profiling endpoints are registered explicitly (the server does
		// not use http.DefaultServeMux, so the net/http/pprof side-effect
		// import alone would expose nothing).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("pprof enabled on http://%s/debug/pprof/\n", addr)
	}
	var handler http.Handler = mux
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("serving %s on http://%s with %d backends (max batch %d, window %v, queue %d)\n",
		model, addr, len(pool), maxBatch, batchWindow, queueDepth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Printf("\n%v: draining in-flight requests\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Printf("drained: %d completed, %d rejected, %d expired, %d failed across %d batches\n",
		st.Completed, st.Rejected, st.Expired, st.Failed, st.Batches)
	return nil
}

// runProbe exercises a running server once: health, one inference, stats.
func runProbe(base string) error {
	client := &http.Client{Timeout: 10 * time.Second}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	var health serve.HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("healthz decode: %w", err)
	}
	if health.Status != "ok" || health.Input.Volume() == 0 {
		return fmt.Errorf("unhealthy server: %+v", health)
	}

	img := make([]float32, health.Input.Volume())
	for i := range img {
		img[i] = float32(i%7) / 7
	}
	body, err := json.Marshal(serve.InferRequest{Image: img})
	if err != nil {
		return err
	}
	resp, err = client.Post(base+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /infer: status %s", resp.Status)
	}
	var infer serve.InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&infer); err != nil {
		return fmt.Errorf("infer decode: %w", err)
	}
	if len(infer.Output) == 0 {
		return fmt.Errorf("empty inference output")
	}
	fmt.Printf("inferred: argmax %d over %d classes, modeled kernel %.3f ms\n",
		infer.Argmax, len(infer.Output), infer.KernelMs)

	resp, err = client.Get(base + "/statsz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var stats serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return fmt.Errorf("statsz decode: %w", err)
	}
	if stats.Completed == 0 {
		return fmt.Errorf("statsz reports no completed requests after a successful inference")
	}
	fmt.Printf("stats: %d completed, %d batches, %d backends\n",
		stats.Completed, stats.Batches, len(stats.Backends))

	resp, err = client.Get(base + "/metricsz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metricsz: status %s", resp.Status)
	}
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(resp.Body); err != nil {
		return fmt.Errorf("metricsz read: %w", err)
	}
	if !bytes.Contains(metrics.Bytes(), []byte("condor_serve_requests_total")) {
		return fmt.Errorf("metricsz exposition missing condor_serve_requests_total:\n%s", metrics.String())
	}
	fmt.Printf("metrics: %d bytes of Prometheus exposition\n", metrics.Len())
	return nil
}
