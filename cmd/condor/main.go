// Command condor is the framework driver: it turns a trained CNN (a Caffe
// prototxt+caffemodel pair or the Condor JSON representation plus a weights
// file) into a packaged FPGA accelerator, and deploys it on-premise or on
// the AWS F1 instances.
//
// Usage:
//
//	condor build   -prototxt net.prototxt -caffemodel net.caffemodel -board aws-f1-vu9p -freq 180 -out build/
//	condor build   -network net.json -weights net.cndw [-dse] -out build/
//	condor info    -xclbin build/net.xclbin
//	condor deploy  -xclbin build/net.xclbin -weights build/net.cndw \
//	               -endpoint http://127.0.0.1:8780 -bucket my-bucket [-ami]
//	condor boards
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"condor"
	"condor/internal/aws"
	"condor/internal/bitstream"
	"condor/internal/board"
	"condor/internal/condorir"
	"condor/internal/diag"
	"condor/internal/hls"
	"condor/internal/models"
	"condor/internal/quant"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "deploy":
		err = cmdDeploy(os.Args[2:])
	case "cosim":
		err = cmdCosim(os.Args[2:])
	case "lint":
		err = cmdLint(os.Args[2:])
	case "boards":
		err = cmdBoards()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "condor: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "condor:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `condor — CNN-to-FPGA dataflow framework (IPDPSW'18 reproduction)

commands:
  build    generate the accelerator from a Caffe model or Condor JSON
  info     inspect a compiled xclbin
  deploy   deploy an F1 build to the (simulated) AWS cloud
  cosim    co-simulate a build against the reference CNN engine
  lint     run the pre-synthesis design verifier on a network
  boards   list supported deployment targets`)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	prototxt := fs.String("prototxt", "", "Caffe network description")
	caffemodel := fs.String("caffemodel", "", "Caffe trained model (binary)")
	onnxPath := fs.String("onnx", "", "ONNX model (binary)")
	network := fs.String("network", "", "Condor network representation (JSON)")
	weights := fs.String("weights", "", "Condor weights file (.cndw)")
	boardID := fs.String("board", "", "deployment board (see 'condor boards')")
	freq := fs.Float64("freq", 0, "requested kernel clock in MHz")
	runDSE := fs.Bool("dse", false, "run automated design-space exploration")
	precision := fs.String("precision", "float32", "fabric numeric format: float32 | int16 | int8")
	emitHLS := fs.Bool("hls-project", false, "also emit the generated Vivado HLS project (sources + Tcl)")
	outDir := fs.String("out", "build", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := condor.Input{Board: *boardID, FrequencyMHz: *freq, RunDSE: *runDSE}
	p, err := parsePrecision(*precision)
	if err != nil {
		return err
	}
	in.Precision = p
	switch {
	case *prototxt != "":
		src, err := os.ReadFile(*prototxt)
		if err != nil {
			return err
		}
		in.Prototxt = string(src)
		if *caffemodel == "" {
			return fmt.Errorf("the Caffe input method requires -caffemodel")
		}
		blob, err := os.ReadFile(*caffemodel)
		if err != nil {
			return err
		}
		in.CaffeModel = blob
	case *onnxPath != "":
		blob, err := os.ReadFile(*onnxPath)
		if err != nil {
			return err
		}
		in.ONNXModel = blob
	case *network != "":
		js, err := os.ReadFile(*network)
		if err != nil {
			return err
		}
		in.NetworkJSON = js
		if *weights == "" {
			return fmt.Errorf("the Condor input method requires -weights")
		}
		wf, err := os.Open(*weights)
		if err != nil {
			return err
		}
		defer wf.Close()
		in.WeightsFile = wf
	default:
		return fmt.Errorf("provide -prototxt/-caffemodel, -onnx, or -network/-weights")
	}

	f := &condor.Framework{Logf: func(format string, a ...any) {
		fmt.Printf("  "+format+"\n", a...)
	}}
	b, err := f.BuildAccelerator(in)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(*outDir, b.Meta.Name)
	wbytes, err := b.WeightsBytes()
	if err != nil {
		return err
	}
	files := map[string][]byte{
		base + ".xo":     b.XO,
		base + ".xclbin": b.Xclbin,
		base + ".cndw":   wbytes,
		base + "_host.c": []byte(b.HostCode),
	}
	irJSON, err := b.IR.ToJSON()
	if err != nil {
		return err
	}
	files[base+".json"] = irJSON
	for path, data := range files {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	if *emitHLS {
		proj, err := hls.GenerateProject(b.Spec)
		if err != nil {
			return err
		}
		hlsDir := filepath.Join(*outDir, "hls")
		if err := proj.WriteTo(hlsDir); err != nil {
			return err
		}
		fmt.Printf("wrote HLS project (%d files) to %s\n", len(proj.Files), hlsDir)
	}
	s, err := b.Performance()
	if err != nil {
		return err
	}
	u := b.Report.Utilization
	fmt.Printf("\n%s on %s: %.0f MHz (requested %.0f)\n", b.Meta.Name, b.Meta.Board, b.Meta.AchievedMHz, b.Meta.RequestedMHz)
	fmt.Printf("  LUT %.2f%%  FF %.2f%%  DSP %.2f%%  BRAM %.2f%%\n", 100*u.LUT, 100*u.FF, 100*u.DSP, 100*u.BRAM)
	fmt.Printf("  %.2f GFLOPS  %.2f GFLOPS/W  latency %.3f ms/image\n", s.GFLOPS, s.GFLOPSPerWatt, s.LatencyMs)
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	path := fs.String("xclbin", "", "compiled kernel binary")
	dotPath := fs.String("dot", "", "write the accelerator netlist as Graphviz to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("-xclbin is required")
	}
	data, err := os.ReadFile(*path)
	if err != nil {
		return err
	}
	x, err := bitstream.ReadXclbin(data)
	if err != nil {
		return err
	}
	fmt.Printf("name:      %s\nkernel:    %s\nboard:     %s (%s)\n",
		x.Meta.Name, x.Meta.Kernel, x.Meta.Board, x.Meta.Part)
	fmt.Printf("clock:     %.0f MHz achieved (%.0f requested)\n", x.Meta.AchievedMHz, x.Meta.RequestedMHz)
	u := x.Meta.Utilization
	fmt.Printf("resources: LUT %.2f%%  FF %.2f%%  DSP %.2f%%  BRAM %.2f%%\n",
		100*u.LUT, 100*u.FF, 100*u.DSP, 100*u.BRAM)
	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(x.Spec.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote netlist to", *dotPath)
	}
	fmt.Printf("PEs:       %d\n", len(x.Spec.PEs))
	for _, pe := range x.Spec.PEs {
		names := ""
		for i, l := range pe.Layers {
			if i > 0 {
				names += "+"
			}
			names += l.Name
		}
		fmt.Printf("  %-6s %-24s in=%d out=%d\n", pe.ID, names, pe.Par.In, pe.Par.Out)
	}
	return nil
}

func cmdDeploy(args []string) error {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	xclbinPath := fs.String("xclbin", "", "compiled F1 kernel binary")
	weightsPath := fs.String("weights", "", "Condor weights file (.cndw)")
	networkPath := fs.String("network", "", "Condor network representation (JSON)")
	endpoint := fs.String("endpoint", "", "AWS endpoint (e.g. awsmock URL)")
	bucket := fs.String("bucket", "", "S3 bucket for the design")
	ami := fs.Bool("ami", true, "run as if inside the FPGA Developer AMI (provides tool licences)")
	instanceType := fs.String("instance-type", "f1.2xlarge", "F1 instance size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *xclbinPath == "" || *weightsPath == "" || *networkPath == "" {
		return fmt.Errorf("-xclbin, -weights and -network are required")
	}
	xclbin, err := os.ReadFile(*xclbinPath)
	if err != nil {
		return err
	}
	x, err := bitstream.ReadXclbin(xclbin)
	if err != nil {
		return err
	}
	wf, err := os.Open(*weightsPath)
	if err != nil {
		return err
	}
	ws, err := condorir.ReadWeights(wf)
	wf.Close()
	if err != nil {
		return err
	}
	js, err := os.ReadFile(*networkPath)
	if err != nil {
		return err
	}
	ir, err := condorir.FromJSON(js)
	if err != nil {
		return err
	}
	license := ""
	if *ami {
		license = aws.LicenseFromAMI()
	}
	f := &condor.Framework{Logf: func(format string, a ...any) {
		fmt.Printf("  "+format+"\n", a...)
	}}
	b := &condor.Build{IR: ir, Weights: ws, Spec: x.Spec, Xclbin: xclbin, Meta: x.Meta}
	dep, err := f.DeployCloud(b, condor.CloudConfig{
		Endpoint: *endpoint, License: license, Bucket: *bucket, InstanceType: *instanceType,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nAFI:      %s (%s), state %s\n", dep.AFI.FpgaImageID, dep.AFI.FpgaImageGlobalID, dep.AFI.State)
	fmt.Printf("instance: %s, slot %d loaded\n", dep.InstanceID, dep.Slot)
	fmt.Printf("weights:  s3://%s\n", dep.Bucket)
	return nil
}

func cmdCosim(args []string) error {
	fs := flag.NewFlagSet("cosim", flag.ExitOnError)
	network := fs.String("network", "", "Condor network representation (JSON)")
	weights := fs.String("weights", "", "Condor weights file (.cndw)")
	n := fs.Int("n", 8, "number of random test vectors")
	seed := fs.Int64("seed", 1, "test-vector seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *network == "" || *weights == "" {
		return fmt.Errorf("-network and -weights are required")
	}
	js, err := os.ReadFile(*network)
	if err != nil {
		return err
	}
	wf, err := os.Open(*weights)
	if err != nil {
		return err
	}
	defer wf.Close()
	b, err := condor.New().BuildAccelerator(condor.Input{NetworkJSON: js, WeightsFile: wf})
	if err != nil {
		return err
	}
	rep, err := b.Cosim(*n, *seed, 0)
	if err != nil {
		return err
	}
	fmt.Printf("co-simulation of %s: %d vectors\n", b.Meta.Name, rep.Images)
	fmt.Printf("  max |fabric - reference| = %.3g (tolerance %.3g)\n", rep.MaxAbsDiff, rep.Tolerance)
	fmt.Printf("  argmax agreement %.0f%%, cycle model %d vs measured %d\n",
		100*rep.ArgMaxAgreement, rep.ModelCycles, rep.MeasuredCycles)
	if !rep.Passed() {
		return fmt.Errorf("co-simulation FAILED (%d mismatches)", rep.Mismatches)
	}
	fmt.Println("  PASSED")
	return nil
}

// cmdLint runs the design verifier without building anything: it prints
// every diagnostic like a compiler error and fails when any error-severity
// rule fires. Networks come either from a Condor JSON file (with optional
// weights for the weight-consistency rules) or from the built-in evaluation
// models by name. The configuration flags (-cus, -burst, -tap-depth,
// -fifo-depth, -batch) describe the deployment to prove: the fabric rules
// CND020–CND022 statically reject a configuration whose worst-case FIFO
// occupancy exceeds a declared depth or whose replicated compute units
// overcommit the board, and -batch adds the CND024 continuous-streaming
// bound (two in-flight epochs per FIFO). -algo proves a per-layer
// convolution-algorithm deployment: CND025 rejects winograd_f23 on layers
// its F(2,3) tiling cannot cover.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	network := fs.String("network", "", "Condor network representation (JSON)")
	weights := fs.String("weights", "", "Condor weights file (.cndw), optional")
	model := fs.String("model", "", "built-in model: tc1 | lenet | vgg16 | vgg16-features | alexnet | alexnet-features")
	cus := fs.Int("cus", 1, "compute units the deployment replicates the kernel into")
	burst := fs.Int("burst", 0, "DMA burst transaction length in words (0 = host-chunked)")
	tapDepth := fs.Int("tap-depth", 0, "declared tap FIFO depth in words (0 = auto-sized worst case)")
	fifoDepth := fs.Int("fifo-depth", 0, "inter-PE stream FIFO depth override in words (0 = default)")
	precision := fs.String("precision", "float32", "fabric numeric format to prove: float32 | int16 | int8")
	strictLanes := fs.Bool("strict-lanes", false, "reject padded tail lanes (CND023 becomes an error) on the packed int8 datapath")
	algo := fs.String("algo", "", "convolution algorithm override for every conv layer: direct | im2col_gemm | winograd_f23 (CND025 rejects non-qualifying layers)")
	batchStream := fs.Bool("batch", false, "prove the continuous-streaming deployment (CND024: two in-flight epochs must fit every FIFO)")
	quiet := fs.Bool("q", false, "suppress the success line")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ir *condorir.Network
	var ws *condorir.WeightSet
	switch {
	case *network != "":
		js, err := os.ReadFile(*network)
		if err != nil {
			return err
		}
		ir, err = condorir.FromJSON(js)
		if err != nil {
			return err
		}
		if *weights != "" {
			wf, err := os.Open(*weights)
			if err != nil {
				return err
			}
			ws, err = condorir.ReadWeights(wf)
			wf.Close()
			if err != nil {
				return err
			}
		}
	case *model != "":
		var err error
		ir, ws, err = builtinModel(*model)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("provide -network (optionally with -weights) or -model")
	}

	p, err := parsePrecision(*precision)
	if err != nil {
		return err
	}
	diags, err := condor.New().LintWith(ir, ws, condor.LintOptions{
		ComputeUnits:     *cus,
		BurstWords:       *burst,
		TapFIFODepth:     *tapDepth,
		InterPEFIFODepth: *fifoDepth,
		Precision:        p,
		StrictLanes:      *strictLanes,
		BatchStreaming:   *batchStream,
		Algo:             *algo,
	})
	if err != nil {
		return err
	}
	errors := 0
	for _, d := range diags {
		fmt.Println(d)
		if d.Severity == diag.Error {
			errors++
		}
	}
	if errors > 0 {
		return fmt.Errorf("%s: %d design error(s)", ir.Name, errors)
	}
	if !*quiet {
		for _, l := range ir.Layers {
			if l.Type != "Convolution" {
				continue
			}
			a := l.Algorithm
			if *algo != "" {
				a = *algo
			}
			if a == "" {
				a = "direct"
			}
			fmt.Printf("%s: conv layer %s: algorithm %s\n", ir.Name, l.Name, a)
		}
		fmt.Printf("%s: design verification passed (%d warning(s))\n", ir.Name, len(diags))
	}
	return nil
}

// parsePrecision resolves the -precision flag values.
func parsePrecision(s string) (quant.Precision, error) {
	switch s {
	case "", "float32":
		return quant.Float32, nil
	case "int16":
		return quant.Int16, nil
	case "int8":
		return quant.Int8, nil
	default:
		return quant.Float32, fmt.Errorf("unknown precision %q", s)
	}
}

// builtinModel resolves the -model names to the evaluation networks.
func builtinModel(name string) (*condorir.Network, *condorir.WeightSet, error) {
	switch name {
	case "tc1":
		return models.TC1()
	case "lenet":
		return models.LeNet()
	case "vgg16":
		return models.VGG16(), nil, nil
	case "vgg16-features":
		return models.VGG16Features(), nil, nil
	case "alexnet":
		return models.AlexNet(), nil, nil
	case "alexnet-features":
		return models.AlexNetFeatures(), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown model %q (tc1, lenet, vgg16, vgg16-features, alexnet, alexnet-features)", name)
	}
}

func cmdBoards() error {
	for _, id := range board.IDs() {
		b, err := board.Lookup(id)
		if err != nil {
			return err
		}
		kind := "local"
		if b.CloudOnly {
			kind = "cloud (AFI flow)"
		}
		fmt.Printf("%-12s %-40s %s\n", b.ID, b.Name, kind)
	}
	return nil
}
