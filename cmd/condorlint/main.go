// Command condorlint runs Condor's custom static analyzers over the
// repository — the project's multichecker. It is the codebase half of the
// two-level static-analysis layer (the design half is `condor lint`, which
// verifies accelerator Specs pre-synthesis).
//
// Usage:
//
//	condorlint [-list] [-analyzers a,b] [package patterns]
//
// Patterns follow the go tool's directory subset: "./..." (the default)
// walks the tree; "internal/dataflow" names one package. Exit status is 1
// when any finding is reported, so CI can gate on it. Findings can be
// suppressed per line with a "//condorlint:ignore <reason>" comment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"condor/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the available analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	flag.Parse()

	all := analysis.All()
	if *list {
		fmt.Print(analysis.DocSummary(all))
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "condorlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "condorlint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(root, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "condorlint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "condorlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
