// Command condor-fleet is the multi-node front door of the Condor serving
// tier: it consistent-hashes inference requests by model across a
// health-checked membership of condor-serve nodes, breaks circuits per
// node, retries across the replica set, and sheds low-priority load before
// it causes deadline misses. With -autoscale it also runs the control loop
// that scales simulated F1 capacity (through an awsmock-style endpoint)
// against scraped queue depth, utilization and latency.
//
// Boot a router and let two nodes register themselves:
//
//	condor-fleet -addr 127.0.0.1:8790 &
//	condor-serve -addr 127.0.0.1:8781 -fleet http://127.0.0.1:8790 &
//	condor-serve -addr 127.0.0.1:8782 -fleet http://127.0.0.1:8790 &
//	condor-loadgen -target http://127.0.0.1:8790 -rate 100
//
// Or register a pre-started fleet at boot with -nodes:
//
//	condor-fleet -addr 127.0.0.1:8790 \
//	    -nodes http://127.0.0.1:8781,http://127.0.0.1:8782
//
// Endpoints:
//
//	POST /infer       forwarded inference (X-Condor-Priority, -Deadline-Ms,
//	                  -Model, -Request-ID honoured; X-Condor-Node on replies)
//	POST /register    {"url":"http://node"} joins the fleet
//	POST /deregister  {"url":"http://node"} leaves the fleet
//	GET  /nodes       membership snapshot
//	GET  /healthz     router liveness + fleet input shape
//	GET  /readyz      200 once ≥1 node is routable
//	GET  /statsz      admission, retry, per-node and autoscaler counters
//	GET  /metricsz    the same figures in Prometheus text form
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"condor/internal/aws"
	"condor/internal/fleet"
	"condor/internal/obs"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8790", "HTTP listen address")
		nodes       = flag.String("nodes", "", "comma-separated node URLs to register at boot")
		model       = flag.String("model", "default", "default consistent-hash key for unlabelled requests")
		replicas    = flag.Int("replicas", 3, "replica-set size per model key")
		maxInflight = flag.Int("max-inflight", 256, "router-wide inflight bound (429 beyond it)")
		lowFrac     = flag.Float64("low-frac", 0.5, "share of inflight budget low-priority traffic may use")
		retries     = flag.Int("retries", 2, "failover attempts beyond the first replica")
		fwdTimeout  = flag.Duration("forward-timeout", 10*time.Second, "per-attempt forwarding bound")
		probeEvery  = flag.Duration("probe-interval", 500*time.Millisecond, "/readyz probe period")

		autoscale   = flag.Bool("autoscale", false, "run the capacity control loop")
		scaleTarget = flag.String("autoscale-endpoint", "", "cloud endpoint (awsmock) the autoscaler launches F1 instances against")
		instType    = flag.String("instance-type", "f1.2xlarge", "F1 instance type the autoscaler launches")
		minSlots    = flag.Int("min-slots", 0, "autoscaler floor (slots)")
		maxSlots    = flag.Int("max-slots", 8, "autoscaler ceiling (slots)")
		sloMs       = flag.Float64("slo-ms", 0, "p99 latency SLO driving scale-up (0 disables the latency term)")
		scaleEvery  = flag.Duration("scale-interval", time.Second, "control-loop period")
		spinUp      = flag.Duration("spin-up", 30*time.Second, "modeled F1 launch → ready latency")
	)
	flag.Parse()

	if err := run(routerOptions{
		addr: *addr, nodes: *nodes, model: *model,
		replicas: *replicas, maxInflight: *maxInflight, lowFrac: *lowFrac,
		retries: *retries, fwdTimeout: *fwdTimeout, probeEvery: *probeEvery,
		autoscale: *autoscale, scaleEndpoint: *scaleTarget, instType: *instType,
		minSlots: *minSlots, maxSlots: *maxSlots, sloMs: *sloMs,
		scaleEvery: *scaleEvery, spinUp: *spinUp,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "condor-fleet:", err)
		os.Exit(1)
	}
}

type routerOptions struct {
	addr, nodes, model string
	replicas           int
	maxInflight        int
	lowFrac            float64
	retries            int
	fwdTimeout         time.Duration
	probeEvery         time.Duration

	autoscale     bool
	scaleEndpoint string
	instType      string
	minSlots      int
	maxSlots      int
	sloMs         float64
	scaleEvery    time.Duration
	spinUp        time.Duration
}

func run(o routerOptions) error {
	logf := func(format string, a ...any) { fmt.Printf("[fleet] "+format+"\n", a...) }
	rt := fleet.NewRouter(fleet.RouterConfig{
		Model:               o.model,
		ReplicationFactor:   o.replicas,
		MaxInflight:         o.maxInflight,
		LowPriorityFraction: o.lowFrac,
		Retries:             o.retries,
		ForwardTimeout:      o.fwdTimeout,
		Membership: fleet.MembershipConfig{
			ProbeInterval: o.probeEvery,
			Logf:          logf,
		},
		Logf: logf,
	})

	if o.autoscale {
		if o.scaleEndpoint == "" {
			return fmt.Errorf("-autoscale requires -autoscale-endpoint (e.g. a running awsmock)")
		}
		model, err := aws.NewFleetModel(aws.FleetModelConfig{
			InstanceType: o.instType,
			SpinUp:       o.spinUp,
			Logf:         logf,
		}, aws.NewClient(o.scaleEndpoint, aws.LicenseFromAMI()))
		if err != nil {
			return err
		}
		scraper := fleet.NewMetricsScraper(rt.Membership())
		rt.AttachAutoscaler(fleet.NewAutoscaler(fleet.AutoscalerConfig{
			Interval:    o.scaleEvery,
			MinSlots:    o.minSlots,
			MaxSlots:    o.maxSlots,
			SLOTargetMs: o.sloMs,
			Logf:        logf,
		}, scraper.Scrape, model))
		logf("autoscaler on: %s against %s, %d..%d slots, spin-up %v",
			o.instType, o.scaleEndpoint, o.minSlots, o.maxSlots, o.spinUp)
	}

	rt.Start()
	defer rt.Close()

	for _, url := range strings.Split(o.nodes, ",") {
		url = strings.TrimSpace(url)
		if url == "" {
			continue
		}
		if _, err := rt.Membership().Register(url); err != nil {
			return fmt.Errorf("register %s: %w", url, err)
		}
		logf("registered boot node %s", url)
	}

	reg := obs.NewRegistry()
	fleet.RegisterMetrics(reg, rt)

	mux := http.NewServeMux()
	mux.Handle("/", rt.Handler())
	mux.Handle("/metricsz", reg.Handler())
	httpSrv := &http.Server{
		Addr:              o.addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logf("routing on http://%s (model %q, replicas %d, max inflight %d)",
		o.addr, o.model, o.replicas, o.maxInflight)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		logf("%v: shutting down", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	st := rt.Stats()
	logf("done: high %+v low %+v retries %d", st.Classes["high"], st.Classes["low"], st.Retries)
	return nil
}
