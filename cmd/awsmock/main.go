// Command awsmock serves the simulated AWS endpoint (S3, the AFI pipeline
// and F1 instances) over HTTP, so the condor CLI and the examples can run
// the full cloud deployment flow against a local process.
//
// Usage:
//
//	awsmock -addr 127.0.0.1:8780 -afi-delay 2s -fail-rate 0.1
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"condor/internal/aws"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8780", "listen address")
	afiDelay := flag.Duration("afi-delay", 2*time.Second, "simulated AFI generation time")
	failRate := flag.Float64("fail-rate", 0, "fraction of requests that fail with a transient 503 (exercises client retries)")
	failSeed := flag.Int64("fail-seed", 0, "seed of the fault-injection RNG (0 = fixed default)")
	flag.Parse()

	srv := aws.NewServer(aws.Options{
		AFIGenerationDelay: *afiDelay,
		TransientErrorRate: *failRate,
		TransientErrorSeed: *failSeed,
	})
	fmt.Printf("awsmock: S3 at http://%s/s3/, API at http://%s/api\n", *addr, *addr)
	fmt.Printf("awsmock: AFI generation delay %v; licence token %q\n", *afiDelay, aws.DefaultLicense)
	if *failRate > 0 {
		fmt.Printf("awsmock: injecting transient 503s on %.0f%% of requests\n", 100**failRate)
	}
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "awsmock:", err)
		os.Exit(1)
	}
}
