// Command awsmock serves the simulated AWS endpoint (S3, the AFI pipeline
// and F1 instances) over HTTP, so the condor CLI and the examples can run
// the full cloud deployment flow against a local process.
//
// Usage:
//
//	awsmock -addr 127.0.0.1:8780 -afi-delay 2s
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"condor/internal/aws"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8780", "listen address")
	afiDelay := flag.Duration("afi-delay", 2*time.Second, "simulated AFI generation time")
	flag.Parse()

	srv := aws.NewServer(aws.Options{AFIGenerationDelay: *afiDelay})
	fmt.Printf("awsmock: S3 at http://%s/s3/, API at http://%s/api\n", *addr, *addr)
	fmt.Printf("awsmock: AFI generation delay %v; licence token %q\n", *afiDelay, aws.DefaultLicense)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "awsmock:", err)
		os.Exit(1)
	}
}
