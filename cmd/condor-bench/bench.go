package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"condor"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/models"
	"condor/internal/perf"
	"condor/internal/quant"
	"condor/internal/tensor"
)

// algoFabric instantiates a single-conv fabric with seeded random weights,
// the given convolution algorithm and word width (the workload of the
// algo bench legs; mirrors algoBenchFabric in bench_test.go).
func algoFabric(input condorir.InputShape, layer condorir.Layer, algo string, bits int) (*dataflow.Accelerator, error) {
	layer.Algorithm = algo
	ir := &condorir.Network{
		Name: "algobench", Board: "aws-f1-vu9p", FrequencyMHz: 100,
		Input: input, Layers: []condorir.Layer{layer},
	}
	w := tensor.New(layer.NumOutput, input.Channels, layer.KernelSize, layer.KernelSize)
	w.FillRandom(rand.New(rand.NewSource(23)), 0.5)
	ws := condorir.NewWeightSet()
	ws.Put(layer.Name, condorir.EntryWeights, w)
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		return nil, err
	}
	spec.WordBits = bits
	return dataflow.Instantiate(spec, ws)
}

// benchResult is one machine-readable microbenchmark row. The names mirror
// the go-test benchmarks in bench_test.go so CI dashboards can join the two
// sources.
type benchResult struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	ImgPerS float64 `json:"img_per_s"`
	// ModelSpeedupX, on batch-streaming legs, is the modeled steady-state
	// speedup of this leg over its batch=1 counterpart on this host
	// (perf.HostSteadyStateSpeedup). benchdiff divides the measured speedup
	// by it to derive the pipeline_efficiency rows the utilization gate
	// tracks.
	ModelSpeedupX float64 `json:"model_speedup_x,omitempty"`
}

// timeIt runs fn (imagesPerOp images of work per call) until it has both a
// minimum iteration count and a minimum elapsed time, then reports the mean
// of the best of two measurement passes — a run that lost the CPU to a noisy
// neighbour mid-pass gets a second chance, which keeps the committed
// baselines (and the regression gate diffing against them) representative of
// the code rather than of scheduler luck.
func timeIt(name string, imagesPerOp int, fn func() error) (benchResult, error) {
	const (
		minIters = 3
		minTime  = 200 * time.Millisecond
		maxIters = 10000
		passes   = 2
	)
	// Warm-up: first call pays one-time costs (weight staging, allocator).
	if err := fn(); err != nil {
		return benchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	best := benchResult{Name: name}
	for pass := 0; pass < passes; pass++ {
		iters := 0
		start := time.Now()
		for {
			if err := fn(); err != nil {
				return benchResult{}, fmt.Errorf("%s: %w", name, err)
			}
			iters++
			if iters >= maxIters || (iters >= minIters && time.Since(start) >= minTime) {
				break
			}
		}
		nsPerOp := float64(time.Since(start).Nanoseconds()) / float64(iters)
		if best.NsPerOp == 0 || nsPerOp < best.NsPerOp {
			best.Iters, best.NsPerOp = iters, nsPerOp
			best.ImgPerS = float64(imagesPerOp) * 1e9 / nsPerOp
		}
	}
	return best, nil
}

// benchJSON runs the fabric-throughput microbenchmarks (the same workloads
// as BenchmarkFabricThroughput, BenchmarkReferenceEngine and
// BenchmarkBaselineGEMMEngine) and writes the results as JSON, for CI
// artifact upload and regression tracking. For every entry of cus a
// batch-16 leg runs on a compute-unit pool of that size
// (BenchmarkFabricThroughput/cus=N), measuring the replication speedup on
// hosts with enough cores — on a single-core host the legs coincide. The
// fabric legs repeat per requested dtype: float32 keeps the bare leg names
// (baseline continuity), every other precision gets a /dtype=<p> suffix so
// benchdiff keys the rows apart and can gate the int8 speedup itself. Each
// dtype additionally runs a batch=1/batch=8 streaming pair (drain-between-
// images vs one resident session), with the modeled steady-state speedup
// recorded on the batch=8 row for the pipeline-efficiency gate.
func benchJSON(path string, cus []int, dtypes []quant.Precision) error {
	ir, ws, err := models.TC1()
	if err != nil {
		return err
	}
	net, err := ir.BuildNN(ws)
	if err != nil {
		return err
	}
	fabricImgs := models.USPSImages(1, 5)
	poolImgs := models.USPSImages(16, 5)
	streamImgs := models.USPSImages(8, 5)
	refImg := models.USPSImages(1, 6)[0]
	gemmImg := models.USPSImages(1, 3)[0]

	type benchCase struct {
		name   string
		images int
		model  float64 // modeled steady-state speedup (batch-streaming legs)
		fn     func() error
	}
	cases := []benchCase{
		{name: "BenchmarkReferenceEngine", images: 1, fn: func() error {
			_, err := net.Predict(refImg)
			return err
		}},
		{name: "BenchmarkBaselineGEMMEngine/direct", images: 1, fn: func() error {
			_, err := net.Predict(gemmImg)
			return err
		}},
		{name: "BenchmarkBaselineGEMMEngine/gemm", images: 1, fn: func() error {
			var out *tensor.Tensor
			out, err := net.GEMMForward(gemmImg)
			_ = out
			return err
		}},
	}
	for _, p := range dtypes {
		bld, err := condor.New().BuildAccelerator(condor.Input{IR: ir, Weights: ws, Precision: p})
		if err != nil {
			return err
		}
		dep, err := bld.Fabric()
		if err != nil {
			return err
		}
		suffix := ""
		if p != quant.Float32 {
			suffix = "/dtype=" + p.String()
		}
		cases = append(cases, benchCase{name: "BenchmarkFabricThroughput" + suffix, images: 1, fn: func() error {
			_, _, err := dep.Run(fabricImgs)
			return err
		}})
		for _, n := range cus {
			pool := dataflow.NewCUPool(dep, n)
			cases = append(cases, benchCase{name: fmt.Sprintf("BenchmarkFabricThroughput/cus=%d%s", n, suffix), images: len(poolImgs), fn: func() error {
				_, _, err := pool.Run(poolImgs)
				return err
			}})
		}
		// The batch-streaming pair: batch=1 drains between images
		// (image-at-a-time Run), batch=8 streams the same eight images
		// back-to-back through a resident session. The batch=8 row carries
		// the modeled steady-state speedup for this host so benchdiff can
		// derive the measured/modeled pipeline_efficiency ratio.
		cases = append(cases, benchCase{name: "BenchmarkFabricThroughput/batch=1" + suffix, images: len(streamImgs), fn: func() error {
			for i := range streamImgs {
				if _, _, err := dep.Run(streamImgs[i : i+1]); err != nil {
					return err
				}
			}
			return nil
		}})
		sess := dep.OpenSession()
		defer sess.Close()
		cases = append(cases, benchCase{
			name:   "BenchmarkFabricThroughput/batch=8" + suffix,
			images: len(streamImgs),
			model:  perf.HostSteadyStateSpeedup(perf.Stages(dep.Spec), len(streamImgs), runtime.GOMAXPROCS(0)),
			fn: func() error {
				_, _, err := sess.RunBatch(streamImgs)
				return err
			},
		})
	}

	// Per-layer convolution-algorithm legs: two LeNet-class single-conv
	// workloads (a 5×5 layer where im2col+GEMM applies, and a 3×3/stride-1
	// layer where Winograd F(2,3) also qualifies), per requested dtype.
	// benchdiff derives <algo>_speedup_x rows against the algo=direct
	// siblings and gates them.
	algoWorkloads := []struct {
		name  string
		input condorir.InputShape
		layer condorir.Layer
		algos []string
	}{
		{"conv5", condorir.InputShape{Channels: 20, Height: 12, Width: 12},
			condorir.Layer{Name: "conv", Type: "Convolution", KernelSize: 5, Stride: 1, NumOutput: 50, PEGroup: -1},
			[]string{"direct", "im2col_gemm"}},
		{"conv3", condorir.InputShape{Channels: 16, Height: 16, Width: 16},
			condorir.Layer{Name: "conv", Type: "Convolution", KernelSize: 3, Stride: 1, Pad: 1, NumOutput: 16, PEGroup: -1},
			[]string{"direct", "im2col_gemm", "winograd_f23"}},
	}
	algoShort := map[string]string{"direct": "direct", "im2col_gemm": "gemm", "winograd_f23": "winograd"}
	for _, wl := range algoWorkloads {
		rng := rand.New(rand.NewSource(19))
		imgs := make([]*tensor.Tensor, 16)
		for i := range imgs {
			img := tensor.New(wl.input.Channels, wl.input.Height, wl.input.Width)
			img.FillRandom(rng, 1)
			imgs[i] = img
		}
		for _, p := range dtypes {
			suffix := ""
			if p != quant.Float32 {
				suffix = "/dtype=" + p.String()
			}
			for _, algo := range wl.algos {
				acc, err := algoFabric(wl.input, wl.layer, algo, p.Bits())
				if err != nil {
					return err
				}
				cases = append(cases, benchCase{
					name:   fmt.Sprintf("BenchmarkFabricThroughput/%s/algo=%s%s", wl.name, algoShort[algo], suffix),
					images: len(imgs),
					fn: func() error {
						_, _, err := acc.Run(imgs)
						return err
					},
				})
			}
		}
	}

	var results []benchResult
	fmt.Println("Fabric microbenchmarks")
	for _, c := range cases {
		r, err := timeIt(c.name, c.images, c.fn)
		if err != nil {
			return err
		}
		r.ModelSpeedupX = c.model
		results = append(results, r)
		fmt.Printf("%-38s %10d iters %14.0f ns/op %12.1f img/s\n", r.Name, r.Iters, r.NsPerOp, r.ImgPerS)
	}

	blob, err := json.MarshalIndent(struct {
		Benchmarks []benchResult `json:"benchmarks"`
	}{results}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return nil
}
