// Command condor-bench regenerates the paper's evaluation — Table 1,
// Table 2 and Figure 5 — and prints each result side by side with the
// numbers the paper reports. Absolute values come from this repository's
// analytic models rather than the authors' testbed; the shapes (who wins,
// by what factor, where the curves converge) are the reproduction target.
//
// Usage:
//
//	condor-bench            # everything
//	condor-bench -only table1|table2|figure5
//	condor-bench -json BENCH_fabric.json   # fabric microbenchmarks → JSON
//	condor-bench -layers tc1               # per-layer traced cycle profile
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"condor"
	"condor/internal/quant"
)

func main() {
	only := flag.String("only", "", "run a single experiment: table1 | table2 | figure5")
	jsonOut := flag.String("json", "", "run the fabric microbenchmarks and write results to this JSON file (e.g. BENCH_fabric.json)")
	cusList := flag.String("cus", "1,2", "comma-separated compute-unit counts for the -json batch-throughput legs")
	dtypeList := flag.String("dtype", "float32", "comma-separated fabric numeric formats for the -json legs: float32 | int8")
	layers := flag.String("layers", "", "print a per-layer traced cycle profile of the fabric: tc1 | lenet")
	layersBatch := flag.Int("layers-batch", 4, "batch size for the -layers profile")
	flag.Parse()

	cus, err := parseCUs(*cusList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "condor-bench: -cus: %v\n", err)
		os.Exit(1)
	}
	dtypes, err := parseDtypes(*dtypeList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "condor-bench: -dtype: %v\n", err)
		os.Exit(1)
	}

	if *layers != "" {
		if err := layerTable(*layers, *layersBatch); err != nil {
			fmt.Fprintf(os.Stderr, "condor-bench: layers: %v\n", err)
			os.Exit(1)
		}
		if *only == "" && *jsonOut == "" {
			return // -layers alone prints only the profile
		}
	}

	run := func(name string, fn func() error) {
		if *only != "" && *only != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "condor-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		if err := benchJSON(*jsonOut, cus, dtypes); err != nil {
			fmt.Fprintf(os.Stderr, "condor-bench: bench: %v\n", err)
			os.Exit(1)
		}
		if *only == "" && *layers == "" {
			return // -json (with optional -cus) runs only the microbenchmarks
		}
	}
	run("table1", table1)
	run("table2", table2)
	run("figure5", figure5)
}

// parseCUs parses the -cus list ("1,2,4") into positive ints.
func parseCUs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid compute-unit count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseDtypes parses the -dtype list ("float32,int8") into precisions.
func parseDtypes(s string) ([]quant.Precision, error) {
	var out []quant.Precision
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "":
		case "float32":
			out = append(out, quant.Float32)
		case "int8":
			out = append(out, quant.Int8)
		default:
			return nil, fmt.Errorf("unknown dtype %q (float32 | int8)", part)
		}
	}
	if len(out) == 0 {
		out = []quant.Precision{quant.Float32}
	}
	return out, nil
}

func table1() error {
	rows, err := condor.Table1()
	if err != nil {
		return err
	}
	fmt.Println("Table 1 — AWS F1 deployment results (paper values in parentheses)")
	fmt.Printf("%-7s %12s %12s %12s %12s %14s %14s\n",
		"", "LUT %", "FF %", "DSP %", "BRAM %", "GFLOPS", "GFLOPS/W")
	for i, r := range rows {
		p := condor.Table1Paper[i]
		fmt.Printf("%-7s %5.2f (%5.2f) %5.2f (%5.2f) %5.2f (%5.2f) %5.2f (%5.2f) %6.2f (%6.2f) %6.2f (%6.2f)\n",
			r.Name,
			r.LUTPct, p.LUTPct, r.FFPct, p.FFPct,
			r.DSPPct, p.DSPPct, r.BRAMPct, p.BRAMPct,
			r.GFLOPS, p.GFLOPS, r.GFLOPSPerWatt, p.GFLOPSPerWatt)
	}
	fmt.Println()
	return nil
}

func table2() error {
	rows, err := condor.Table2()
	if err != nil {
		return err
	}
	fmt.Println("Table 2 — improved methodology, features-extraction GFLOPS (paper in parentheses)")
	for i, r := range rows {
		p := condor.Table2Paper[i]
		fmt.Printf("%-8s %7.2f (%7.2f)\n", r.Name, r.GFLOPS, p.GFLOPS)
	}
	if err := condor.VerifyVGGClassifierGate(); err != nil {
		fmt.Printf("VGG-16 classifier: rejected as in the paper — %v\n", err)
	} else {
		fmt.Println("WARNING: VGG-16 classifier unexpectedly synthesizable")
	}
	fmt.Println()
	return nil
}

func figure5() error {
	series, err := condor.Figure5(condor.DefaultFigure5Batches)
	if err != nil {
		return err
	}
	fmt.Println("Figure 5 — mean time to process an image vs. batch size (ms/image)")
	fmt.Printf("%8s", "batch")
	for _, s := range series {
		fmt.Printf(" %12s", s.Name)
	}
	fmt.Println()
	for i, b := range condor.DefaultFigure5Batches {
		fmt.Printf("%8d", b)
		for _, s := range series {
			fmt.Printf(" %12.4f", s.Points[i].MeanMsPerImage)
		}
		fmt.Println()
	}
	for _, s := range series {
		fmt.Printf("%s: %d logical layers — convergence knee expected near batch %d\n",
			s.Name, s.Layers, s.Layers)
	}
	fmt.Println()
	return nil
}
