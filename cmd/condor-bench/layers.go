package main

import (
	"fmt"
	"time"

	"condor"
	"condor/internal/condorir"
	"condor/internal/models"
	"condor/internal/perf"
	"condor/internal/tensor"
)

// layerTable runs a traced batch on the named model's fabric and prints the
// per-layer span rollup: where the modeled cycles go, element by element.
// The same data exports as Chrome trace-event JSON via `condor-sim -trace`.
func layerTable(model string, batch int) error {
	var (
		ir   *condorir.Network
		ws   *condorir.WeightSet
		imgs []*tensor.Tensor
		err  error
	)
	switch model {
	case "tc1":
		ir, ws, err = models.TC1()
		imgs = models.USPSImages(batch, 5)
	case "lenet":
		ir, ws, err = models.LeNet()
		imgs = models.MNISTImages(batch, 5)
	default:
		return fmt.Errorf("unknown model %q (want tc1 or lenet)", model)
	}
	if err != nil {
		return err
	}
	bld, err := condor.New().BuildAccelerator(condor.Input{IR: ir, Weights: ws})
	if err != nil {
		return err
	}
	tr, stats, err := bld.TraceFabric(imgs)
	if err != nil {
		return err
	}

	var totalCycles int64
	for i := range stats.PEs {
		totalCycles += stats.PEs[i].Cycles
	}
	fmt.Printf("Per-layer fabric profile — %s, batch %d (modeled cycles; wall is host simulation time)\n", model, batch)
	fmt.Printf("%-10s %-10s %6s %14s %12s %10s %7s\n",
		"track", "span", "count", "cycles/img", "words/img", "wall", "share")
	for _, row := range tr.Summary() {
		share := ""
		if row.Cycles > 0 && totalCycles > 0 {
			share = fmt.Sprintf("%6.1f%%", 100*float64(row.Cycles)/float64(totalCycles))
		}
		fmt.Printf("%-10s %-10s %6d %14d %12d %10s %7s\n",
			row.Track, row.Name, row.Count,
			row.Cycles/int64(batch), row.Words/int64(batch),
			row.Wall.Round(10*time.Microsecond).String(), share)
	}
	fmt.Printf("total: %d modeled PE cycles across %d images (%d cycles/img bottleneck)\n\n",
		totalCycles, stats.Images, stats.BottleneckCycles())

	// Per-layer convolution-algorithm comparison: modeled cycles of each
	// conv layer under every applicable algorithm, with the deployed choice.
	rows := perf.ConvAlgoTable(bld.Spec)
	if len(rows) > 0 {
		fmt.Printf("Per-layer convolution algorithms (modeled cycles/img per mode)\n")
		fmt.Printf("%-10s %-10s %-12s %12s %12s %12s\n",
			"pe", "layer", "selected", "direct", "im2col_gemm", "winograd")
		for _, r := range rows {
			wg := "-"
			if r.WinogradCycles > 0 {
				wg = fmt.Sprintf("%d", r.WinogradCycles)
			}
			fmt.Printf("%-10s %-10s %-12s %12d %12d %12s\n",
				r.PE, r.Layer, string(r.Selected), r.DirectCycles, r.GEMMCycles, wg)
		}
		fmt.Println()
	}
	return nil
}
