// Command condor-modelgen emits the paper's evaluation networks as input
// files for the condor CLI: the LeNet Caffe pair (prototxt + caffemodel
// with seeded synthetic weights) and the TC1/LeNet/VGG-16 Condor JSON
// representations with matching .cndw weight files.
//
// Usage:
//
//	condor-modelgen -model lenet-caffe -out models/
//	condor-modelgen -model tc1 -out models/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"condor/internal/condorir"
	"condor/internal/models"
	"condor/internal/onnx"
)

func main() {
	model := flag.String("model", "lenet-caffe", "what to emit: lenet-caffe | lenet-onnx | tc1 | lenet | vgg16-features")
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 7, "weight generator seed")
	flag.Parse()

	if err := run(*model, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "condor-modelgen:", err)
		os.Exit(1)
	}
}

func run(model, out string, seed int64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	switch model {
	case "lenet-caffe":
		blob, err := models.LeNetCaffeModel(seed)
		if err != nil {
			return err
		}
		if err := write(filepath.Join(out, "lenet.prototxt"), []byte(models.LeNetPrototxt)); err != nil {
			return err
		}
		return write(filepath.Join(out, "lenet.caffemodel"), blob)
	case "lenet-onnx":
		ir, ws, err := models.LeNet()
		if err != nil {
			return err
		}
		net, err := ir.BuildNN(ws)
		if err != nil {
			return err
		}
		blob, err := onnx.Encode(net)
		if err != nil {
			return err
		}
		return write(filepath.Join(out, "lenet.onnx"), blob)
	case "tc1":
		ir, ws, err := models.TC1()
		if err != nil {
			return err
		}
		return writeIR(out, "tc1", ir, ws)
	case "lenet":
		ir, ws, err := models.LeNet()
		if err != nil {
			return err
		}
		return writeIR(out, "lenet", ir, ws)
	case "vgg16-features":
		ir := models.VGG16Features()
		ws, err := models.RandomWeights(ir, seed)
		if err != nil {
			return err
		}
		return writeIR(out, "vgg16_features", ir, ws)
	default:
		return fmt.Errorf("unknown model %q", model)
	}
}

func writeIR(dir, name string, ir *condorir.Network, ws *condorir.WeightSet) error {
	js, err := ir.ToJSON()
	if err != nil {
		return err
	}
	if err := write(filepath.Join(dir, name+".json"), js); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".cndw"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ws.Write(f); err != nil {
		return err
	}
	fmt.Println("wrote", f.Name())
	return nil
}

func write(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
