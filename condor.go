// Package condor is the public facade of the Condor framework
// (CONvolutional neural networks Dataflow Optimization using Reconfigurable
// hardware), a reproduction of "A Framework with Cloud Integration for CNN
// Acceleration on FPGA Devices" (Raspa, Natale, Bacis, Santambrogio —
// IPDPSW 2018).
//
// The framework is the paper's three-tier architecture:
//
//   - the frontend collects the network (a Caffe prototxt+caffemodel pair or
//     the Condor JSON representation plus external weights) and the
//     deployment option;
//   - the core logic maps the network onto the dataflow accelerator
//     template (PEs, filters, FIFOs), optionally runs design-space
//     exploration, and produces the packaged kernel (.xo → xclbin) together
//     with the synthesis and performance reports;
//   - the backend deploys the kernel either on a local board through the
//     SDAccel-like runtime or on AWS F1 through the S3→AFI→instance flow.
package condor

import (
	"bytes"
	"fmt"
	"io"

	"condor/internal/bitstream"
	"condor/internal/board"
	"condor/internal/caffe"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/diag"
	"condor/internal/dse"
	"condor/internal/hls"
	"condor/internal/nn"
	"condor/internal/onnx"
	"condor/internal/perf"
	"condor/internal/power"
	"condor/internal/quant"
	"condor/internal/verify"
)

// Input is what the frontend tier collects.
type Input struct {
	// Caffe path: a prototxt network description and the trained
	// caffemodel bytes.
	Prototxt   string
	CaffeModel []byte

	// ONNX path: a binary ONNX model (the format the paper lists as a
	// planned frontend; supported here).
	ONNXModel []byte

	// Condor-native path: the internal JSON network representation and the
	// external weights file.
	NetworkJSON []byte
	WeightsFile io.Reader

	// Pre-parsed inputs (used by callers that already hold the IR).
	IR      *condorir.Network
	Weights *condorir.WeightSet

	// Deployment option.
	Board        string  // board id from the catalogue; defaults to the IR's
	FrequencyMHz float64 // requested kernel clock; defaults to the IR's

	// RunDSE enables the design-space exploration phase (the paper performs
	// it manually; Condor automates it).
	RunDSE bool

	// ComputeUnits is the kernel replication factor the build is verified
	// for (the CUs a later DeployLocalCUs will request). 0 means 1. The
	// fabric rules CND020–CND022 prove the configuration deadlock-free and
	// within the board budget before any packaging work.
	ComputeUnits int

	// Precision selects the fabric numeric format. The default Float32 is
	// the paper's configuration; Int16/Int8 enable the fixed-point
	// quantization of the related work (weights snapped to the fixed-point
	// grid, MAC datapath and buffers shrunk accordingly).
	Precision quant.Precision
}

// Build is the output of the core-logic tier: everything needed to deploy
// and run the accelerator.
type Build struct {
	IR      *condorir.Network
	Weights *condorir.WeightSet

	Spec   *dataflow.Spec
	Report *hls.Report

	XO     []byte
	Xclbin []byte
	Meta   bitstream.Metadata

	HostCode string

	// DSETrace records the exploration moves when RunDSE was set.
	DSETrace []dse.Move

	// QuantReport describes the weight quantization when a fixed-point
	// precision was selected (nil for float32).
	QuantReport *quant.Report
}

// Framework drives the three tiers.
type Framework struct {
	// Logf, when set, receives progress lines for each step of the design
	// automation flow.
	Logf func(format string, args ...any)
}

// New returns a framework with no logging.
func New() *Framework { return &Framework{} }

func (f *Framework) logf(format string, args ...any) {
	if f != nil && f.Logf != nil {
		f.Logf(format, args...)
	}
}

// Frontend runs the input-analysis step: it accepts either input method and
// produces the validated internal representation plus the weight set.
func (f *Framework) Frontend(in Input) (*condorir.Network, *condorir.WeightSet, error) {
	var ir *condorir.Network
	var ws *condorir.WeightSet
	switch {
	case in.IR != nil:
		ir, ws = in.IR, in.Weights
		if ws == nil {
			return nil, nil, fmt.Errorf("condor: pre-parsed input requires a weight set")
		}
	case in.Prototxt != "":
		f.logf("frontend: translating Caffe model to the Condor representation")
		topo, err := caffe.ParsePrototxt(in.Prototxt)
		if err != nil {
			return nil, nil, err
		}
		if len(in.CaffeModel) == 0 {
			return nil, nil, fmt.Errorf("condor: the Caffe input method requires the caffemodel bytes")
		}
		trained, err := caffe.ParseCaffeModel(in.CaffeModel)
		if err != nil {
			return nil, nil, err
		}
		topo.MergeWeights(trained)
		boardID := in.Board
		if boardID == "" {
			return nil, nil, fmt.Errorf("condor: the Caffe input method requires a deployment board")
		}
		if in.FrequencyMHz <= 0 {
			return nil, nil, fmt.Errorf("condor: the Caffe input method requires an operating frequency")
		}
		ir, ws, err = condorir.FromCaffe(topo, boardID, in.FrequencyMHz)
		if err != nil {
			return nil, nil, err
		}
	case len(in.ONNXModel) > 0:
		f.logf("frontend: translating ONNX model to the Condor representation")
		m, err := onnx.Parse(in.ONNXModel)
		if err != nil {
			return nil, nil, err
		}
		net, err := m.ToNetwork()
		if err != nil {
			return nil, nil, err
		}
		if net.Name == "" {
			net.Name = "onnx-model"
		}
		if in.Board == "" {
			return nil, nil, fmt.Errorf("condor: the ONNX input method requires a deployment board")
		}
		if in.FrequencyMHz <= 0 {
			return nil, nil, fmt.Errorf("condor: the ONNX input method requires an operating frequency")
		}
		ir, ws, err = condorir.FromNN(net, in.Board, in.FrequencyMHz)
		if err != nil {
			return nil, nil, err
		}
	case len(in.NetworkJSON) > 0:
		f.logf("frontend: parsing the Condor network representation")
		var err error
		ir, err = condorir.FromJSON(in.NetworkJSON)
		if err != nil {
			return nil, nil, err
		}
		if in.WeightsFile == nil {
			return nil, nil, fmt.Errorf("condor: the Condor input method requires the weights file")
		}
		ws, err = condorir.ReadWeights(in.WeightsFile)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("condor: no input provided (Caffe files, Condor JSON, or a pre-parsed IR)")
	}

	// Deployment overrides.
	if in.Board != "" {
		ir.Board = in.Board
	}
	if in.FrequencyMHz > 0 {
		ir.FrequencyMHz = in.FrequencyMHz
	}
	if _, err := board.Lookup(ir.Board); err != nil {
		return nil, nil, err
	}
	if err := ir.Validate(); err != nil {
		return nil, nil, err
	}
	// The weights must match the network geometry (this also catches
	// missing entries early, before any synthesis work).
	if _, err := ir.BuildNN(ws); err != nil {
		return nil, nil, err
	}
	return ir, ws, nil
}

// BuildAccelerator runs the full core-logic tier: layer creation, optional
// design-space exploration, memory planning, synthesis estimation, IP
// packaging and the XOCC compile.
func (f *Framework) BuildAccelerator(in Input) (*Build, error) {
	ir, ws, err := f.Frontend(in)
	if err != nil {
		return nil, err
	}
	b := &Build{IR: ir, Weights: ws}

	if in.Precision != quant.Float32 {
		f.logf("core: quantizing weights to %s", in.Precision)
		qws, qrep, err := quant.QuantizeWeights(ws, in.Precision)
		if err != nil {
			return nil, err
		}
		b.Weights, b.QuantReport = qws, qrep
		ws = qws
		// Re-validate the quantized weights against the geometry.
		if _, err := ir.BuildNN(ws); err != nil {
			return nil, err
		}
	}

	if in.RunDSE {
		f.logf("core: design-space exploration")
		// The walk runs under the selected precision's resource and cycle
		// models, so int8 builds explore the parallelism headroom their
		// cheaper MACs and packed streams actually leave.
		res, err := dse.Explore(ir, dse.Options{Precisions: []quant.Precision{in.Precision}})
		if err != nil {
			return nil, err
		}
		b.IR = res.IR
		b.DSETrace = res.Trace
		ir = res.IR
	}

	f.logf("core: creating layers and assembling the accelerator")
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		return nil, err
	}
	spec.WordBits = in.Precision.Bits()
	f.logf("core: planning on-chip memory")
	if err := hls.PlanMemory(spec); err != nil {
		return nil, err
	}
	b.Spec = spec

	// Pre-synthesis design verification: the static stand-in for the
	// elaboration gate of the real HLS/SDAccel flow. Warnings are reported
	// and the build proceeds; errors abort before any packaging work. The
	// configuration-dependent fabric rules run for the deployment this
	// build targets (ComputeUnits replicas).
	f.logf("core: verifying the design against the CND rule catalogue")
	diags := verify.LintConfig(spec, ir, ws, verify.FabricConfig{CUs: in.ComputeUnits})
	for _, d := range diags {
		if d.Severity == diag.Warning {
			f.logf("verify: %s", d)
		}
	}
	if err := diag.Err(diags); err != nil {
		return nil, fmt.Errorf("condor: design verification failed: %w", err)
	}

	f.logf("core: packaging the accelerator IP (.xo)")
	b.XO, err = bitstream.PackageXO(spec)
	if err != nil {
		return nil, err
	}
	f.logf("backend: compiling with XOCC for %s", ir.Board)
	b.Xclbin, b.Report, err = bitstream.XOCC(b.XO, ir.Board)
	if err != nil {
		return nil, err
	}
	x, err := bitstream.ReadXclbin(b.Xclbin)
	if err != nil {
		return nil, err
	}
	b.Meta = x.Meta
	b.HostCode = x.Host
	f.logf("backend: achieved %.0f MHz (requested %.0f), LUT %.1f%% FF %.1f%% DSP %.1f%% BRAM %.1f%%",
		b.Meta.AchievedMHz, b.Meta.RequestedMHz,
		100*b.Report.Utilization.LUT, 100*b.Report.Utilization.FF,
		100*b.Report.Utilization.DSP, 100*b.Report.Utilization.BRAM)
	return b, nil
}

// LintOptions parameterizes the standalone verifier: the execution
// configuration to prove (compute units, burst size) and hand-built FIFO
// depth overrides, so a proposed deployment can be checked — and rejected —
// without touching the network description.
type LintOptions struct {
	// ComputeUnits and BurstWords form the FabricConfig the CND020–CND022
	// rules verify (0 = the defaults: one CU, host-chunked bursts).
	ComputeUnits int
	BurstWords   int

	// BatchStreaming declares the continuous-streaming deployment (resident
	// sessions, back-to-back images) and enables the CND024 two-epochs-in-
	// flight capacity rule on every FIFO edge.
	BatchStreaming bool

	// TapFIFODepth, when positive, declares that depth (in words) for every
	// filter chain's tap FIFOs instead of the auto-sized analytic worst
	// case — the knob that makes a FIFO-infeasible design expressible.
	TapFIFODepth int

	// InterPEFIFODepth, when positive, overrides the depth of the streaming
	// FIFOs between PEs.
	InterPEFIFODepth int

	// Precision selects the fabric numeric format the configuration is
	// verified for (the -precision/-dtype the deployment will run). Int8
	// enables the packed-lane rule CND023.
	Precision quant.Precision

	// StrictLanes escalates CND023 from warning to error: streamed-edge
	// volumes the packed lane count does not divide are rejected instead of
	// falling back to zero-padded tail lanes.
	StrictLanes bool

	// Algo, when non-empty, overrides the convolution algorithm of every
	// conv layer before verification ("direct", "im2col_gemm",
	// "winograd_f23"), so a proposed per-layer-algorithm deployment can be
	// checked — and rejected by CND025 — without editing the network.
	Algo string
}

// Lint runs the pre-synthesis design verifier standalone: the IR is mapped
// onto the accelerator template and memory-planned exactly as a build would,
// then every CND design rule is checked. ws may be nil when no weights are
// available (topology-only networks like the VGG-16 IR); the weight
// consistency rules are skipped in that case. The returned diagnostics are
// sorted errors-first; building stops here, nothing is packaged.
func (f *Framework) Lint(ir *condorir.Network, ws *condorir.WeightSet) ([]*verify.Diagnostic, error) {
	return f.LintWith(ir, ws, LintOptions{})
}

// LintWith is Lint for one concrete deployment configuration: the spec is
// assembled, the option overrides are applied, and the full rule catalogue —
// structural, weight, board and the configuration-dependent fabric rules —
// runs over the result.
func (f *Framework) LintWith(ir *condorir.Network, ws *condorir.WeightSet, opts LintOptions) ([]*verify.Diagnostic, error) {
	if err := ir.Validate(); err != nil {
		return nil, err
	}
	f.logf("lint: assembling the accelerator spec for %s", ir.Name)
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		return nil, err
	}
	spec.WordBits = opts.Precision.Bits()
	spec.StrictLanes = opts.StrictLanes
	if opts.Algo != "" {
		algo, err := dataflow.ParseConvAlgo(opts.Algo)
		if err != nil {
			return nil, err
		}
		for _, pe := range spec.PEs {
			for i := range pe.Layers {
				if pe.Layers[i].Kind == nn.Conv {
					pe.Layers[i].ConvAlgo = algo
				}
			}
		}
	}
	if opts.InterPEFIFODepth > 0 {
		spec.InterPEFIFODepth = opts.InterPEFIFODepth
	}
	if opts.TapFIFODepth > 0 {
		for _, pe := range spec.PEs {
			if pe.Chain != nil {
				pe.Chain.TapFIFODepth = opts.TapFIFODepth
			}
		}
	}
	if err := hls.PlanMemory(spec); err != nil {
		return nil, err
	}
	f.logf("lint: verifying %d PEs against the CND rule catalogue", len(spec.PEs))
	cfg := verify.FabricConfig{CUs: opts.ComputeUnits, BurstWords: opts.BurstWords, BatchStreaming: opts.BatchStreaming}
	return verify.LintConfig(spec, ir, ws, cfg), nil
}

// PerformanceSummary is the evaluation view of a build: the quantities the
// paper's Table 1 reports.
type PerformanceSummary struct {
	BottleneckCycles int64
	GFLOPS           float64
	PowerW           float64
	GFLOPSPerWatt    float64
	LatencyMs        float64
}

// Performance evaluates the build with the cycle-level pipeline model and
// the power model.
func (b *Build) Performance() (PerformanceSummary, error) {
	net, err := b.IR.BuildNN(b.Weights)
	if err != nil {
		return PerformanceSummary{}, err
	}
	stages := perf.Stages(b.Spec)
	bott := perf.Bottleneck(stages)
	gflops := perf.SteadyStateGFLOPS(net.TotalFLOPs(), bott, b.Meta.AchievedMHz)
	p := power.Model(b.Report.Total, b.Meta.AchievedMHz, gflops)
	return PerformanceSummary{
		BottleneckCycles: bott,
		GFLOPS:           gflops,
		PowerW:           p.TotalW(),
		GFLOPSPerWatt:    power.GFLOPSPerWatt(gflops, p),
		LatencyMs:        perf.CyclesToMs(perf.Latency(stages), b.Meta.AchievedMHz),
	}, nil
}

// BatchCurve evaluates the Figure 5 series for the build.
func (b *Build) BatchCurve(batches []int) ([]perf.BatchPoint, error) {
	return perf.BatchCurve(perf.Stages(b.Spec), b.Meta.AchievedMHz, batches)
}

// WeightsBytes serialises the build's weight set in the Condor external
// weights format (the file the datamover loads at runtime).
func (b *Build) WeightsBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := b.Weights.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
