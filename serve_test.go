package condor

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"condor/internal/aws"
	"condor/internal/models"
	"condor/internal/serve"
	"condor/internal/tensor"
)

// localBoard is an on-premise board from the catalogue (not cloud-only).
const localBoard = "ku115"

// TestDeployLocalUniqueDeviceIDs: a pool of local deployments must model
// distinct cards, not alias one "fpga0".
func TestDeployLocalUniqueDeviceIDs(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().BuildAccelerator(Input{IR: ir, Weights: ws, Board: localBoard})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		dep, err := New().DeployLocal(b)
		if err != nil {
			t.Fatal(err)
		}
		if seen[dep.ID()] {
			t.Fatalf("deployment %d reuses device id %q", i, dep.ID())
		}
		seen[dep.ID()] = true
	}
}

// mixedPool builds the same network for an on-premise board and for the F1,
// then assembles a heterogeneous serving pool: nLocal local boards (each
// replicated into cus compute units, every unit its own backend when cus > 1)
// plus the programmed slots of one F1 instance behind the given endpoint.
func mixedPool(t *testing.T, endpoint string, nLocal, cus, slots int) []serve.Backend {
	t.Helper()
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	f := New()
	var pool []serve.Backend

	localBuild, err := f.BuildAccelerator(Input{IR: ir, Weights: ws, Board: localBoard})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nLocal; i++ {
		dep, err := f.DeployLocalCUs(localBuild, cus)
		if err != nil {
			t.Fatal(err)
		}
		if cus > 1 {
			for _, cb := range dep.CUBackends() {
				pool = append(pool, cb)
			}
		} else {
			pool = append(pool, dep)
		}
	}

	ir2, ws2, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	cloudBuild, err := f.BuildAccelerator(Input{IR: ir2, Weights: ws2})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := f.DeployCloud(cloudBuild, CloudConfig{
		Endpoint: endpoint, License: aws.LicenseFromAMI(),
		Bucket:       fmt.Sprintf("condor-serve-test-%d", time.Now().UnixNano()),
		InstanceType: "f1.4xlarge", Slots: slots,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Terminate() }) //nolint:errcheck
	for _, sb := range dep.SlotBackends() {
		pool = append(pool, sb)
	}
	return pool
}

// TestServeStressMixedPool is the serving acceptance gate: 64 concurrent
// clients against a pool of four backends (one local board replicated into
// two compute-unit backends, plus two F1 slots of one instance, reached
// through a cloud endpoint that injects transient faults). Run under -race.
// Every request must either complete or fail with an explicit
// backpressure/deadline error, and the stats must show that dynamic
// batching actually coalesced requests.
func TestServeStressMixedPool(t *testing.T) {
	stressMixedPool(t)
}

// TestServeStressMixedPoolSingleProc re-runs the acceptance gate at
// GOMAXPROCS=1: the fabric's worker pools degrade to the sequential
// schedule and every CU/slot backend still settles every request — the
// parallel-port machinery must be semantics-free on a single-core host.
func TestServeStressMixedPoolSingleProc(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	stressMixedPool(t)
}

func stressMixedPool(t *testing.T) {
	cloud := aws.NewServer(aws.Options{
		AFIGenerationDelay: time.Millisecond,
		TransientErrorRate: 0.05,
		TransientErrorSeed: 7,
	})
	ts := httptest.NewServer(cloud)
	defer ts.Close()

	pool := mixedPool(t, ts.URL, 1, 2, 2)
	if len(pool) != 4 {
		t.Fatalf("pool has %d backends, want 4", len(pool))
	}
	s, err := serve.New(serve.Config{
		Backends:    pool,
		MaxBatch:    8,
		BatchWindow: 2 * time.Millisecond,
		QueueDepth:  256,
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 64, 3
	imgs := models.USPSImages(clients, 99)
	var completed, rejected, expired, failed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				out, _, err := s.Submit(ctx, imgs[c])
				cancel()
				switch {
				case err == nil:
					if out == nil || out.Len() == 0 {
						t.Errorf("client %d: empty output without error", c)
					}
					completed.Add(1)
				case errors.Is(err, serve.ErrQueueFull):
					rejected.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					expired.Add(1)
				default:
					// Backend faults surface explicitly too (the injected
					// cloud 503s are absorbed by client retries, so none
					// are expected here — but an explicit error is still a
					// settled outcome, not a drop).
					t.Logf("client %d: backend error: %v", c, err)
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}

	total := completed.Load() + rejected.Load() + expired.Load() + failed.Load()
	if total != clients*perClient {
		t.Fatalf("settled %d of %d requests: some were silently dropped", total, clients*perClient)
	}
	if completed.Load() == 0 {
		t.Fatal("no request completed")
	}

	st := s.Stats()
	if st.Admitted != st.Completed+st.Expired+st.Failed {
		t.Fatalf("stats leak: admitted %d != completed %d + expired %d + failed %d",
			st.Admitted, st.Completed, st.Expired, st.Failed)
	}
	if st.MaxBatchFormed() <= 1 {
		t.Fatalf("batch histogram %v: dynamic batching never formed a batch > 1", st.BatchSizeHist)
	}
	if len(st.Backends) != 4 {
		t.Fatalf("stats report %d backends, want 4", len(st.Backends))
	}
	var poolImages uint64
	for _, b := range st.Backends {
		poolImages += b.Images
	}
	if poolImages < st.Completed {
		t.Fatalf("backends ran %d images, %d completed", poolImages, st.Completed)
	}
	t.Logf("stress: %d completed, %d rejected, %d expired; batches %v; p50/p95/p99 kernel %.2f/%.2f/%.2f ms",
		completed.Load(), rejected.Load(), expired.Load(), st.BatchSizeHist,
		st.KernelMsP50, st.KernelMsP95, st.KernelMsP99)
}

// TestServeMixedPoolSpreadsLoad checks the least-loaded scheduler actually
// uses the whole heterogeneous pool under sustained traffic.
func TestServeMixedPoolSpreadsLoad(t *testing.T) {
	cloud := aws.NewServer(aws.Options{AFIGenerationDelay: time.Millisecond})
	ts := httptest.NewServer(cloud)
	defer ts.Close()

	pool := mixedPool(t, ts.URL, 1, 1, 2)
	s, err := serve.New(serve.Config{Backends: pool, MaxBatch: 2, BatchWindow: time.Millisecond, QueueDepth: 128})
	if err != nil {
		t.Fatal(err)
	}
	imgs := models.USPSImages(8, 3)
	var wg sync.WaitGroup
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Submit(ctx, imgs[i%len(imgs)]) //nolint:errcheck
		}(i)
	}
	wg.Wait()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	busy := 0
	for _, b := range st.Backends {
		if b.Batches > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d of %d backends did work: %+v", busy, len(st.Backends), st.Backends)
	}
}

// TestServeEndToEndOutputsMatchDirectInference: the serving pipeline must
// return the same numbers a direct Infer on a deployment produces.
func TestServeEndToEndOutputsMatch(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().BuildAccelerator(Input{IR: ir, Weights: ws, Board: localBoard})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := New().DeployLocal(b)
	if err != nil {
		t.Fatal(err)
	}
	img := models.USPSImages(1, 5)[0]
	direct, _, err := dep.Infer([]*tensor.Tensor{img})
	if err != nil {
		t.Fatal(err)
	}

	s, err := serve.New(serve.Config{Backends: []serve.Backend{dep}, MaxBatch: 4, BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	served, _, err := s.Submit(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(direct[0].Shape(), served.Shape()) {
		t.Fatalf("served shape %v != direct %v", served.Shape(), direct[0].Shape())
	}
	for i, v := range direct[0].Data() {
		if served.Data()[i] != v {
			t.Fatalf("served output differs from direct inference at word %d: %v != %v", i, served.Data()[i], v)
		}
	}
}
