package condor

import (
	"strings"
	"testing"

	"condor/internal/models"
)

// The reproduction targets the paper's qualitative shape, not its absolute
// numbers (our substrate is a model, not the authors' testbed). These tests
// pin the shape.

func TestTable1Shape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "TC1" || rows[1].Name != "LeNet" {
		t.Fatalf("rows = %+v", rows)
	}
	tc1, lenet := rows[0], rows[1]

	// Clocks close as requested (100 / 180 MHz).
	if tc1.AchievedMHz != 100 || lenet.AchievedMHz != 180 {
		t.Fatalf("clocks = %v / %v", tc1.AchievedMHz, lenet.AchievedMHz)
	}
	// TC1 outperforms LeNet in GFLOPS and GFLOPS/W (paper: 8.36 vs 3.35,
	// 1.56 vs 0.78).
	if tc1.GFLOPS <= lenet.GFLOPS {
		t.Fatalf("TC1 GFLOPS %v should exceed LeNet %v", tc1.GFLOPS, lenet.GFLOPS)
	}
	if tc1.GFLOPSPerWatt <= lenet.GFLOPSPerWatt {
		t.Fatalf("TC1 efficiency %v should exceed LeNet %v", tc1.GFLOPSPerWatt, lenet.GFLOPSPerWatt)
	}
	// LeNet is BRAM-dominated (on-chip FC weights), far above TC1's BRAM.
	if lenet.BRAMPct <= 4*tc1.BRAMPct {
		t.Fatalf("LeNet BRAM %v%% should dwarf TC1 %v%%", lenet.BRAMPct, tc1.BRAMPct)
	}
	// Magnitudes: single-digit GFLOPS band and utilizations below 50%.
	for _, r := range rows {
		if r.GFLOPS < 0.5 || r.GFLOPS > 40 {
			t.Fatalf("%s GFLOPS %v outside plausible band", r.Name, r.GFLOPS)
		}
		if r.LUTPct <= 0 || r.LUTPct > 50 || r.BRAMPct < 0 || r.BRAMPct > 60 {
			t.Fatalf("%s utilization out of band: %+v", r.Name, r)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Name] = r.GFLOPS
	}
	// Paper ordering: VGG-16 (113) > LeNet (53) > TC1 (16).
	if !(byName["VGG-16"] > byName["LeNet"] && byName["LeNet"] > byName["TC1"]) {
		t.Fatalf("Table 2 ordering violated: %+v", byName)
	}
	// The improved methodology beats the sequential Table 1 numbers.
	t1, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if byName["TC1"] <= t1[0].GFLOPS {
		t.Fatalf("improved TC1 %v should beat sequential %v", byName["TC1"], t1[0].GFLOPS)
	}
	if byName["LeNet"] <= t1[1].GFLOPS {
		t.Fatalf("improved LeNet %v should beat sequential %v", byName["LeNet"], t1[1].GFLOPS)
	}
}

func TestVGGClassifierGateReproduced(t *testing.T) {
	err := VerifyVGGClassifierGate()
	if err == nil {
		t.Fatal("the VGG-16 classifier must be rejected, as the paper reports")
	}
	if !strings.Contains(err.Error(), "not synthesizable") {
		t.Fatalf("unexpected gate error: %v", err)
	}
}

func TestFigure5Shape(t *testing.T) {
	series, err := Figure5(DefaultFigure5Batches)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		pts := s.Points
		for i := 1; i < len(pts); i++ {
			if pts[i].MeanMsPerImage > pts[i-1].MeanMsPerImage*1.0001 {
				t.Fatalf("%s: mean time must decrease with batch size: %+v", s.Name, pts)
			}
		}
		// Convergence: batch 64 within 25% of the asymptote implied by the
		// largest batch, and the knee near the layer count: the mean at
		// batch ≥ layers is much closer to the asymptote than batch 1.
		first := pts[0].MeanMsPerImage
		last := pts[len(pts)-1].MeanMsPerImage
		// LeNet's pipeline is dominated by the ip1 stage, so the effect is
		// smaller there (≈1.2x) than for the balanced TC1 pipeline.
		if first < 1.15*last {
			t.Fatalf("%s: expected a pronounced pipeline effect (batch1 %.4f vs batch64 %.4f)", s.Name, first, last)
		}
		var atKnee float64
		for _, p := range pts {
			if p.Batch >= s.Layers {
				atKnee = p.MeanMsPerImage
				break
			}
		}
		if atKnee == 0 || atKnee > 2*last {
			t.Fatalf("%s: convergence knee not near layer count (%d): knee %.4f vs limit %.4f",
				s.Name, s.Layers, atKnee, last)
		}
	}
}

func TestIRFeatureFLOPs(t *testing.T) {
	// Against the nn accounting on TC1 (which has weights available).
	b, err := New().BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	net, err := b.IR.BuildNN(b.Weights)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.IR.FeatureFLOPs()
	if err != nil {
		t.Fatal(err)
	}
	want := net.FeatureExtractionFLOPs()
	if got != want {
		t.Fatalf("feature FLOPs %d != nn accounting %d", got, want)
	}
}

func TestAlexNetClassifierGate(t *testing.T) {
	// AlexNet's fc6 (37.7M words) also exceeds the HLS array limit.
	err := ClassifierGate(models.AlexNet())
	if err == nil || !strings.Contains(err.Error(), "not synthesizable") {
		t.Fatalf("expected AlexNet classifier rejection, got %v", err)
	}
	// Its features stage synthesizes fine.
	if err := ClassifierGate(models.AlexNetFeatures()); err != nil {
		t.Fatalf("AlexNet features should synthesize: %v", err)
	}
}
