package condor

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"condor/internal/aws"
	"condor/internal/models"
	"condor/internal/onnx"
	"condor/internal/quant"
	"condor/internal/tensor"
)

func tc1Input(t *testing.T) Input {
	t.Helper()
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	return Input{IR: ir, Weights: ws}
}

func TestBuildAcceleratorFromIR(t *testing.T) {
	var logLines []string
	f := &Framework{Logf: func(format string, args ...any) {
		logLines = append(logLines, format)
	}}
	b, err := f.BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	if b.Meta.Kernel != "condor_TC1" || b.Meta.Board != "aws-f1-vu9p" {
		t.Fatalf("meta = %+v", b.Meta)
	}
	if len(b.XO) == 0 || len(b.Xclbin) == 0 || b.HostCode == "" {
		t.Fatal("build artifacts missing")
	}
	if !b.Report.Fits {
		t.Fatal("TC1 must fit the F1")
	}
	if len(logLines) == 0 {
		t.Fatal("expected progress logging")
	}
}

func TestBuildAcceleratorFromCaffe(t *testing.T) {
	blob, err := models.LeNetCaffeModel(3)
	if err != nil {
		t.Fatal(err)
	}
	f := New()
	b, err := f.BuildAccelerator(Input{
		Prototxt:     models.LeNetPrototxt,
		CaffeModel:   blob,
		Board:        "aws-f1-vu9p",
		FrequencyMHz: models.LeNetFreqMHz,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Meta.Name != "LeNet" || b.Meta.RequestedMHz != 180 {
		t.Fatalf("meta = %+v", b.Meta)
	}
}

func TestBuildAcceleratorFromJSONAndWeightsFile(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	js, err := ir.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	var wbuf bytes.Buffer
	if err := ws.Write(&wbuf); err != nil {
		t.Fatal(err)
	}
	b, err := New().BuildAccelerator(Input{NetworkJSON: js, WeightsFile: &wbuf})
	if err != nil {
		t.Fatal(err)
	}
	if b.Meta.Name != "TC1" {
		t.Fatalf("meta = %+v", b.Meta)
	}
}

func TestBuildAcceleratorFromONNX(t *testing.T) {
	// Round-trip LeNet through the ONNX frontend and check the build is
	// functionally identical to the Caffe-path build.
	ir, ws, err := models.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	net, err := ir.BuildNN(ws)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := onnx.Encode(net)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New().BuildAccelerator(Input{
		ONNXModel:    blob,
		Board:        "aws-f1-vu9p",
		FrequencyMHz: models.LeNetFreqMHz,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Meta.Name != "LeNet" {
		t.Fatalf("meta = %+v", b.Meta)
	}
	acc, err := b.Fabric()
	if err != nil {
		t.Fatal(err)
	}
	imgs := models.MNISTImages(1, 5)
	outs, _, err := acc.Run(imgs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Predict(imgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(outs[0], want, 2e-3) {
		t.Fatal("ONNX-path accelerator computes different outputs")
	}
}

func TestFrontendInputErrors(t *testing.T) {
	f := New()
	if _, _, err := f.Frontend(Input{}); err == nil {
		t.Fatal("expected no-input error")
	}
	if _, _, err := f.Frontend(Input{Prototxt: models.LeNetPrototxt}); err == nil {
		t.Fatal("expected missing-caffemodel error")
	}
	blob, _ := models.LeNetCaffeModel(1)
	if _, _, err := f.Frontend(Input{Prototxt: models.LeNetPrototxt, CaffeModel: blob}); err == nil {
		t.Fatal("expected missing-board error")
	}
	ir, _, _ := models.TC1()
	if _, _, err := f.Frontend(Input{IR: ir}); err == nil {
		t.Fatal("expected missing-weights error")
	}
	ir2, ws2, _ := models.TC1()
	if _, _, err := f.Frontend(Input{IR: ir2, Weights: ws2, Board: "bogus"}); err == nil {
		t.Fatal("expected unknown-board error")
	}
}

func TestPerformanceSummaryBands(t *testing.T) {
	b, err := New().BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.Performance()
	if err != nil {
		t.Fatal(err)
	}
	// Table 1 bands: TC1 lands in single-digit GFLOPS and Watts.
	if s.GFLOPS < 1 || s.GFLOPS > 30 {
		t.Fatalf("TC1 GFLOPS = %v", s.GFLOPS)
	}
	if s.PowerW < 3 || s.PowerW > 12 {
		t.Fatalf("TC1 power = %v W", s.PowerW)
	}
	if s.GFLOPSPerWatt <= 0 {
		t.Fatal("efficiency must be positive")
	}
	if s.LatencyMs <= 0 || s.BottleneckCycles <= 0 {
		t.Fatalf("latency/bottleneck = %v / %v", s.LatencyMs, s.BottleneckCycles)
	}
}

func TestBatchCurveFigure5Shape(t *testing.T) {
	b, err := New().BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	curve, err := b.BatchCurve([]int{1, 2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].MeanMsPerImage > curve[i-1].MeanMsPerImage {
			t.Fatal("Figure 5 curve must be non-increasing")
		}
	}
	if curve[0].MeanMsPerImage <= curve[len(curve)-1].MeanMsPerImage*1.01 {
		t.Fatal("expected a visible pipeline effect between batch 1 and 32")
	}
}

func TestLocalDeploymentEndToEnd(t *testing.T) {
	ir, ws, err := models.TC1()
	if err != nil {
		t.Fatal(err)
	}
	ir.Board = "zc706" // a locally-deployable board
	f := New()
	b, err := f.BuildAccelerator(Input{IR: ir, Weights: ws})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := f.DeployLocal(b)
	if err != nil {
		t.Fatal(err)
	}
	imgs := models.USPSImages(2, 21)
	outs, ms, err := dep.Infer(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || ms <= 0 {
		t.Fatalf("outputs %d, ms %v", len(outs), ms)
	}
	net, err := b.IR.BuildNN(b.Weights)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imgs {
		want, err := net.Predict(imgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(outs[i], want, 2e-3) {
			t.Fatalf("image %d mismatch", i)
		}
	}
}

func TestLocalDeploymentRefusesF1(t *testing.T) {
	f := New()
	b, err := f.BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DeployLocal(b); err == nil {
		t.Fatal("F1 builds must not deploy locally")
	}
}

func TestCloudDeploymentEndToEnd(t *testing.T) {
	srv := aws.NewServer(aws.Options{AFIGenerationDelay: 5 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	f := New()
	b, err := f.BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := f.DeployCloud(b, CloudConfig{
		Endpoint: ts.URL,
		License:  aws.LicenseFromAMI(),
		Bucket:   "condor-e2e",
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.AFI.State != aws.AFIAvailable {
		t.Fatalf("AFI state %q", dep.AFI.State)
	}
	imgs := models.USPSImages(4, 31)
	outs, ms, err := dep.Infer(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 4 || ms <= 0 {
		t.Fatalf("outputs %d ms %v", len(outs), ms)
	}
	net, err := b.IR.BuildNN(b.Weights)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imgs {
		want, err := net.Predict(imgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(outs[i], want, 2e-3) {
			t.Fatalf("cloud image %d mismatch", i)
		}
	}
	if err := dep.Terminate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloudDeploymentMultiSlot(t *testing.T) {
	srv := aws.NewServer(aws.Options{AFIGenerationDelay: 5 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	f := New()
	b, err := f.BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := f.DeployCloud(b, CloudConfig{
		Endpoint:     ts.URL,
		License:      aws.LicenseFromAMI(),
		Bucket:       "condor-fleet",
		InstanceType: "f1.16xlarge",
		Slots:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dep.Slots) != 8 {
		t.Fatalf("programmed slots = %v", dep.Slots)
	}
	imgs := models.USPSImages(16, 41)
	outs, ms, err := dep.InferSharded(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 16 || ms <= 0 {
		t.Fatalf("outputs %d ms %v", len(outs), ms)
	}
	net, err := b.IR.BuildNN(b.Weights)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imgs {
		want, err := net.Predict(imgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if outs[i] == nil || !tensor.AllClose(outs[i], want, 2e-3) {
			t.Fatalf("sharded image %d mismatch", i)
		}
	}
	// The sharded wall time (2 images per slot) must undercut the
	// single-slot time for the same batch.
	_, msSingle, err := dep.Infer(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if ms >= msSingle {
		t.Fatalf("sharded %v ms should beat single-slot %v ms", ms, msSingle)
	}
}

func TestCloudDeploymentTooManySlots(t *testing.T) {
	srv := aws.NewServer(aws.Options{AFIGenerationDelay: time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	f := New()
	b, err := f.BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.DeployCloud(b, CloudConfig{
		Endpoint: ts.URL, License: aws.LicenseFromAMI(), Bucket: "condor-oversub",
		InstanceType: "f1.2xlarge", Slots: 4,
	})
	if err == nil {
		t.Fatal("expected slot-count error on f1.2xlarge")
	}
}

func TestCloudDeploymentRequiresLicense(t *testing.T) {
	srv := aws.NewServer(aws.Options{AFIGenerationDelay: time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	f := New()
	b, err := f.BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.DeployCloud(b, CloudConfig{Endpoint: ts.URL, Bucket: "nolic"})
	if err == nil || !strings.Contains(err.Error(), "License") {
		t.Fatalf("expected licence failure, got %v", err)
	}
}

func TestBuildWithDSE(t *testing.T) {
	in := tc1Input(t)
	in.RunDSE = true
	b, err := New().BuildAccelerator(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.DSETrace) == 0 {
		t.Fatal("expected DSE moves")
	}
	base, err := New().BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	sOpt, err := b.Performance()
	if err != nil {
		t.Fatal(err)
	}
	sBase, err := base.Performance()
	if err != nil {
		t.Fatal(err)
	}
	if sOpt.GFLOPS <= sBase.GFLOPS {
		t.Fatalf("DSE should improve GFLOPS: %v vs %v", sOpt.GFLOPS, sBase.GFLOPS)
	}
}

func TestQuantizedBuild(t *testing.T) {
	in16 := tc1Input(t)
	in16.Precision = quant.Int16
	b16, err := New().BuildAccelerator(in16)
	if err != nil {
		t.Fatal(err)
	}
	if b16.QuantReport == nil || b16.QuantReport.Precision != quant.Int16 {
		t.Fatalf("quant report = %+v", b16.QuantReport)
	}
	if b16.Spec.WordBits != 16 {
		t.Fatalf("spec word bits = %d", b16.Spec.WordBits)
	}
	base, err := New().BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	// Fixed-point MACs shrink the DSP and LUT footprint.
	if b16.Report.KernelTotal.DSP >= base.Report.KernelTotal.DSP {
		t.Fatalf("int16 DSP %v should undercut float32 %v",
			b16.Report.KernelTotal.DSP, base.Report.KernelTotal.DSP)
	}
	if b16.Report.KernelTotal.LUT >= base.Report.KernelTotal.LUT {
		t.Fatalf("int16 LUT %v should undercut float32 %v",
			b16.Report.KernelTotal.LUT, base.Report.KernelTotal.LUT)
	}
	// The quantized fabric still classifies like the float reference.
	acc, err := b16.Fabric()
	if err != nil {
		t.Fatal(err)
	}
	imgs := models.USPSImages(3, 17)
	outs, _, err := acc.Run(imgs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := base.IR.BuildNN(base.Weights)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imgs {
		want, err := ref.Predict(imgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if outs[i].ArgMax() != want.ArgMax() {
			t.Fatalf("image %d: int16 build changed the prediction", i)
		}
	}
}

func TestWeightsBytesRoundTrip(t *testing.T) {
	b, err := New().BuildAccelerator(tc1Input(t))
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.WeightsBytes()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty weights file")
	}
}
