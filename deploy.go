package condor

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"condor/internal/aws"
	"condor/internal/bitstream"
	"condor/internal/diag"
	"condor/internal/obs"
	"condor/internal/sdaccel"
	"condor/internal/serve"
	"condor/internal/tensor"
	"condor/internal/verify"
)

// Both deployment kinds (and each programmed F1 slot) satisfy the serving
// tier's Backend contract, so a serve.Server can pool them freely.
var (
	_ serve.Backend = (*LocalDeployment)(nil)
	_ serve.Backend = (*SlotBackend)(nil)
	_ serve.Backend = (*CUBackend)(nil)
)

// LocalDeployment is a build loaded onto an on-premise board through the
// SDAccel runtime.
type LocalDeployment struct {
	Device *sdaccel.Device
	build  *Build
}

// localDeviceSeq numbers local boards so every deployment models a distinct
// card (fpga0, fpga1, …) — a pool of local backends must not alias one
// device.
var localDeviceSeq atomic.Uint64

// DeployLocal programs the next free local device with the build's xclbin
// and loads the weights (the on-premise path of the backend tier). Each
// call claims a distinct device id.
func (f *Framework) DeployLocal(b *Build) (*LocalDeployment, error) {
	return f.DeployLocalCUs(b, 1)
}

// DeployLocalCUs deploys like DeployLocal with the device's kernel
// replicated into cus compute units: the instances share one sealed weight
// store and execute concurrently, so a single card serves up to cus kernel
// dispatches at once. Use CUBackends to schedule the units independently in
// a serving pool.
func (f *Framework) DeployLocalCUs(b *Build, cus int) (*LocalDeployment, error) {
	// The configuration-dependent fabric rules gate the deployment: a CU
	// count that overcommits the board (CND021) or a FIFO network whose
	// worst-case occupancy exceeds a declared depth (CND020) must fail here,
	// before any device is programmed.
	if err := diag.Err(verify.VerifyFabric(b.Spec, verify.FabricConfig{CUs: cus}, nil)); err != nil {
		return nil, fmt.Errorf("condor: deployment verification failed: %w", err)
	}
	f.logf("backend: programming local board %s", b.Meta.Board)
	dev, err := sdaccel.NewDevice(fmt.Sprintf("fpga%d", localDeviceSeq.Add(1)-1), b.Meta.Board)
	if err != nil {
		return nil, err
	}
	if err := dev.LoadXclbin(b.Xclbin); err != nil {
		return nil, err
	}
	if err := dev.SetComputeUnits(cus); err != nil {
		return nil, err
	}
	if err := dev.LoadWeights(b.Weights); err != nil {
		return nil, err
	}
	return &LocalDeployment{Device: dev, build: b}, nil
}

// ID identifies the deployment's device, e.g. for serving-pool stats.
func (d *LocalDeployment) ID() string { return d.Device.ID }

// Infer runs a batch on the local device and returns the outputs plus the
// modeled kernel time in milliseconds.
func (d *LocalDeployment) Infer(batch []*tensor.Tensor) ([]*tensor.Tensor, float64, error) {
	spec := d.build.Spec
	inVol := spec.Input.Volume()
	outShape := spec.OutputShape()
	outVol := outShape.Volume()

	ctx := sdaccel.CreateContext(d.Device)
	in := ctx.CreateBuffer(len(batch) * inVol)
	out := ctx.CreateBuffer(len(batch) * outVol)
	flat := make([]float32, 0, len(batch)*inVol)
	for i, img := range batch {
		if img.Len() != inVol {
			return nil, 0, fmt.Errorf("condor: image %d has %d words, accelerator input is %d", i, img.Len(), inVol)
		}
		flat = append(flat, img.Data()...)
	}
	ctx.EnqueueWrite(in, flat)
	ctx.EnqueueKernel(in, out, len(batch))
	results := make([]float32, len(batch)*outVol)
	ctx.EnqueueRead(out, results)
	info, err := ctx.Finish()
	if err != nil {
		return nil, 0, err
	}
	outs := make([]*tensor.Tensor, len(batch))
	for i := range outs {
		t := tensor.New(outShape.Channels, outShape.Height, outShape.Width)
		copy(t.Data(), results[i*outVol:(i+1)*outVol])
		outs[i] = t
	}
	return outs, info.KernelMs, nil
}

// CUBackend exposes one compute unit of a local deployment as an
// independently schedulable inference backend — the on-premise counterpart
// of SlotBackend. The serving scheduler keeps one batch in flight per
// backend; dispatches from different CU backends land on distinct free
// kernel instances of the card (the device's acquire path scans for an idle
// unit), so a replicated device contributes cus-way parallelism to the pool.
type CUBackend struct {
	dep *LocalDeployment
	cu  int
}

// CUBackends returns one backend per compute unit of the deployment's
// device. A single-unit device yields one backend equivalent to the
// deployment itself.
func (d *LocalDeployment) CUBackends() []*CUBackend {
	n := d.Device.ComputeUnits()
	out := make([]*CUBackend, n)
	for i := range out {
		out[i] = &CUBackend{dep: d, cu: i}
	}
	return out
}

// ID names the backend after its device and compute unit.
func (b *CUBackend) ID() string { return fmt.Sprintf("%s/cu%d", b.dep.Device.ID, b.cu) }

// Infer runs one batch on the deployment's device, occupying one free
// compute unit for the duration of the kernel.
func (b *CUBackend) Infer(batch []*tensor.Tensor) ([]*tensor.Tensor, float64, error) {
	return b.dep.Infer(batch)
}

// CloudConfig describes the AWS environment for an F1 deployment.
type CloudConfig struct {
	// Endpoint is the base URL of the AWS services (the in-process
	// simulated cloud or cmd/awsmock).
	Endpoint string
	// License is the Xilinx tool licence; use aws.LicenseFromAMI() when
	// running inside the FPGA Developer AMI. Without it AFI creation fails,
	// as the paper describes.
	License string
	// Bucket is the user-specified S3 bucket for designs, weights and data.
	Bucket string
	// InstanceType selects the F1 size (default f1.2xlarge).
	InstanceType string
	// Slots is how many FPGA slots of the instance to program with the AFI
	// (default 1). Inference batches are sharded across the programmed
	// slots, the scale-out mode the F1 offering enables.
	Slots int
	// AFITimeout bounds the wait for AFI generation (default 2 minutes).
	AFITimeout time.Duration
}

// CloudDeployment is a build deployed on an F1 instance.
type CloudDeployment struct {
	Client     *aws.Client
	Bucket     string
	AFI        *aws.AFIRecord
	InstanceID string
	Slot       int   // first programmed slot
	Slots      []int // all programmed slots; batches shard across them
	build      *Build

	// runSeq numbers inference runs so concurrent callers get disjoint S3
	// staging keys.
	runSeq atomic.Uint64
}

// DeployCloud runs the full cloud path of the backend: package the AFI
// tarball, upload it to the user's S3 bucket, start AFI generation, wait
// for availability, launch an F1 instance and load the image on slot 0.
func (f *Framework) DeployCloud(b *Build, cfg CloudConfig) (*CloudDeployment, error) {
	if cfg.Endpoint == "" || cfg.Bucket == "" {
		return nil, fmt.Errorf("condor: cloud deployment requires an endpoint and an S3 bucket")
	}
	if cfg.InstanceType == "" {
		cfg.InstanceType = "f1.2xlarge"
	}
	if cfg.AFITimeout == 0 {
		cfg.AFITimeout = 2 * time.Minute
	}
	client := aws.NewClient(cfg.Endpoint, cfg.License)

	f.logf("backend: packaging the AFI tarball")
	tarball, err := PackageAFITarball(b)
	if err != nil {
		return nil, err
	}
	// The bucket may pre-exist; only a genuinely new name is created.
	if err := client.CreateBucket(cfg.Bucket); err != nil {
		if !isBucketExists(err) {
			return nil, err
		}
	}
	designKey := "designs/" + b.Meta.Kernel + ".tar"
	f.logf("backend: uploading design to s3://%s/%s", cfg.Bucket, designKey)
	if err := client.PutObject(cfg.Bucket, designKey, tarball); err != nil {
		return nil, err
	}

	f.logf("backend: starting AFI generation")
	afi, err := client.CreateFpgaImage(b.Meta.Name, cfg.Bucket, designKey, cfg.Bucket)
	if err != nil {
		return nil, err
	}
	f.logf("backend: AFI %s (%s) pending", afi.FpgaImageID, afi.FpgaImageGlobalID)
	final, err := client.WaitForAFI(afi.FpgaImageID, cfg.AFITimeout)
	if err != nil {
		return nil, err
	}
	if final.State != aws.AFIAvailable {
		return nil, fmt.Errorf("condor: AFI generation failed: %s", final.StateReason)
	}

	f.logf("backend: launching %s and loading the AFI", cfg.InstanceType)
	inst, err := client.RunInstance(cfg.InstanceType)
	if err != nil {
		return nil, err
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.Slots > inst.Slots {
		return nil, fmt.Errorf("condor: %s has %d FPGA slots, %d requested", cfg.InstanceType, inst.Slots, cfg.Slots)
	}
	slots := make([]int, cfg.Slots)
	for s := 0; s < cfg.Slots; s++ {
		if err := client.LoadFpgaImage(inst.InstanceID, s, final.FpgaImageGlobalID); err != nil {
			return nil, err
		}
		slots[s] = s
	}

	// Stage the weights next to the design so remote inference can load
	// them dynamically.
	wbytes, err := b.WeightsBytes()
	if err != nil {
		return nil, err
	}
	if err := client.PutObject(cfg.Bucket, weightsKey(b), wbytes); err != nil {
		return nil, err
	}
	return &CloudDeployment{
		Client: client, Bucket: cfg.Bucket, AFI: final,
		InstanceID: inst.InstanceID, Slot: slots[0], Slots: slots, build: b,
	}, nil
}

// PackageAFITarball wraps the build's xclbin into the AFI creation tarball.
func PackageAFITarball(b *Build) ([]byte, error) {
	return bitstream.PackageAFITarball(b.Xclbin)
}

// Infer uploads a batch to S3, runs it on the deployment's first slot and
// downloads the outputs, returning them with the modeled kernel
// milliseconds. Concurrent calls stage under disjoint S3 keys.
func (d *CloudDeployment) Infer(batch []*tensor.Tensor) ([]*tensor.Tensor, float64, error) {
	return d.inferOnSlot(d.Slot, fmt.Sprintf("runs/run%d", d.runSeq.Add(1)), batch)
}

// ID identifies the deployment's primary slot in a serving pool; use
// SlotBackends to schedule every programmed slot independently.
func (d *CloudDeployment) ID() string {
	return fmt.Sprintf("%s/slot%d", d.InstanceID, d.Slot)
}

// SlotBackend exposes one programmed F1 slot as an independently
// schedulable inference backend: the unit of parallelism the serving tier's
// scheduler dispatches batches to. Each backend stages its runs under its
// own S3 keys, so different slots of one instance execute concurrently
// without colliding.
type SlotBackend struct {
	dep  *CloudDeployment
	slot int
}

// SlotBackends returns one backend per programmed slot of the instance.
func (d *CloudDeployment) SlotBackends() []*SlotBackend {
	slots := d.Slots
	if len(slots) == 0 {
		slots = []int{d.Slot}
	}
	out := make([]*SlotBackend, len(slots))
	for i, s := range slots {
		out[i] = &SlotBackend{dep: d, slot: s}
	}
	return out
}

// ID names the backend after its instance and slot.
func (b *SlotBackend) ID() string { return fmt.Sprintf("%s/slot%d", b.dep.InstanceID, b.slot) }

// Infer runs one batch on this slot.
func (b *SlotBackend) Infer(batch []*tensor.Tensor) ([]*tensor.Tensor, float64, error) {
	prefix := fmt.Sprintf("runs/slot%d/run%d", b.slot, b.dep.runSeq.Add(1))
	return b.dep.inferOnSlot(b.slot, prefix, batch)
}

// InferSharded splits a batch across every programmed slot of the instance
// and runs the shards concurrently, returning outputs in input order and
// the wall kernel time (the slowest shard). With n slots the steady-state
// throughput scales by ≈n — the scale-out mode the F1 instances enable.
func (d *CloudDeployment) InferSharded(batch []*tensor.Tensor) ([]*tensor.Tensor, float64, error) {
	slots := d.Slots
	if len(slots) == 0 {
		slots = []int{d.Slot}
	}
	if len(slots) == 1 || len(batch) <= 1 {
		return d.Infer(batch)
	}
	n := len(slots)
	if n > len(batch) {
		n = len(batch)
	}
	type shardResult struct {
		idx  int
		outs []*tensor.Tensor
		ms   float64
		err  error
	}
	// Contiguous shards preserve output ordering on reassembly; every shard
	// of this run stages under a run-unique key prefix.
	run := d.runSeq.Add(1)
	per := (len(batch) + n - 1) / n
	results := make(chan shardResult, n)
	shards := 0
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if hi > len(batch) {
			hi = len(batch)
		}
		if lo >= hi {
			break
		}
		shards++
		go func(idx, slot int, prefix string, part []*tensor.Tensor) {
			outs, ms, err := d.inferOnSlot(slot, prefix, part)
			results <- shardResult{idx: idx, outs: outs, ms: ms, err: err}
		}(i, slots[i], fmt.Sprintf("runs/run%d/shard%d", run, i), batch[lo:hi])
	}
	outs := make([]*tensor.Tensor, len(batch))
	var maxMs float64
	var firstErr error
	for i := 0; i < shards; i++ {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
			continue
		}
		if r.err == nil {
			copy(outs[r.idx*per:], r.outs)
			if r.ms > maxMs {
				maxMs = r.ms
			}
		}
	}
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return outs, maxMs, nil
}

// inferOnSlot runs one batch against a specific slot, staging input and
// output under the given S3 key prefix; callers pass disjoint prefixes so
// concurrent runs (shards of one batch, or scheduler dispatches to
// different slots) do not collide.
func (d *CloudDeployment) inferOnSlot(slot int, keyPrefix string, batch []*tensor.Tensor) ([]*tensor.Tensor, float64, error) {
	spec := d.build.Spec
	inVol := spec.Input.Volume()
	outShape := spec.OutputShape()
	outVol := outShape.Volume()
	flat := make([]float32, 0, len(batch)*inVol)
	for i, img := range batch {
		if img.Len() != inVol {
			return nil, 0, fmt.Errorf("condor: image %d has %d words, accelerator input is %d", i, img.Len(), inVol)
		}
		flat = append(flat, img.Data()...)
	}
	inKey := keyPrefix + "/input.bin"
	outKey := keyPrefix + "/output.bin"
	if err := d.Client.PutObject(d.Bucket, inKey, aws.EncodeBatch(flat)); err != nil {
		return nil, 0, err
	}
	res, err := d.Client.ExecuteInference(aws.InferenceJob{
		InstanceID: d.InstanceID, Slot: slot,
		Weights: aws.ObjectRef{Bucket: d.Bucket, Key: weightsKey(d.build)},
		Input:   aws.ObjectRef{Bucket: d.Bucket, Key: inKey},
		Output:  aws.ObjectRef{Bucket: d.Bucket, Key: outKey},
		Batch:   len(batch),
	})
	if err != nil {
		return nil, 0, err
	}
	outBytes, err := d.Client.GetObject(d.Bucket, outKey)
	if err != nil {
		return nil, 0, err
	}
	vals, err := aws.DecodeBatch(outBytes)
	if err != nil {
		return nil, 0, err
	}
	if len(vals) != len(batch)*outVol {
		return nil, 0, fmt.Errorf("condor: slot %d output under %s has %d words, want %d", slot, keyPrefix, len(vals), len(batch)*outVol)
	}
	outs := make([]*tensor.Tensor, len(batch))
	for i := range outs {
		t := tensor.New(outShape.Channels, outShape.Height, outShape.Width)
		copy(t.Data(), vals[i*outVol:(i+1)*outVol])
		outs[i] = t
	}
	return outs, res.KernelMs, nil
}

// Terminate shuts the F1 instance down.
func (d *CloudDeployment) Terminate() error {
	return d.Client.TerminateInstance(d.InstanceID)
}

// RegisterMetrics exposes the deployment's device execution counters under
// the condor_sdaccel_* families. For pools with several deployments use
// RegisterDeploymentMetrics, which registers each family once.
func (d *LocalDeployment) RegisterMetrics(reg *obs.Registry) {
	sdaccel.RegisterMetrics(reg, d.Device)
}

// RegisterMetrics exposes the deployment's cloud-client retry accounting
// under the condor_aws_* families. For pools with several deployments use
// RegisterDeploymentMetrics, which registers each family once.
func (d *CloudDeployment) RegisterMetrics(reg *obs.Registry) {
	aws.RegisterMetrics(reg, d.Client)
}

// RegisterDeploymentMetrics wires a whole serving pool's backend
// observability into reg: the execution counters of every distinct local
// device (condor_sdaccel_*) and the aggregate retry accounting of every
// distinct cloud client (condor_aws_*). Backends of other types are ignored.
func RegisterDeploymentMetrics(reg *obs.Registry, backends ...serve.Backend) {
	var devs []*sdaccel.Device
	seenDev := map[*sdaccel.Device]bool{}
	var clients []*aws.Client
	seenCli := map[*aws.Client]bool{}
	addClient := func(d *CloudDeployment) {
		if d != nil && d.Client != nil && !seenCli[d.Client] {
			seenCli[d.Client] = true
			clients = append(clients, d.Client)
		}
	}
	for _, b := range backends {
		switch x := b.(type) {
		case *LocalDeployment:
			if x.Device != nil && !seenDev[x.Device] {
				seenDev[x.Device] = true
				devs = append(devs, x.Device)
			}
		case *CUBackend:
			if x.dep != nil && x.dep.Device != nil && !seenDev[x.dep.Device] {
				seenDev[x.dep.Device] = true
				devs = append(devs, x.dep.Device)
			}
		case *CloudDeployment:
			addClient(x)
		case *SlotBackend:
			addClient(x.dep)
		}
	}
	if len(devs) > 0 {
		sdaccel.RegisterMetrics(reg, devs...)
	}
	if len(clients) > 0 {
		aws.RegisterMetrics(reg, clients...)
	}
}

func weightsKey(b *Build) string { return "weights/" + b.Meta.Kernel + ".cndw" }

func isBucketExists(err error) bool {
	return err != nil && strings.Contains(err.Error(), "BucketAlreadyExists")
}
