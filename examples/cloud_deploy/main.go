// The cloud path end to end: an in-process AWS endpoint is started, the TC1
// accelerator is built for the F1, the design tarball is uploaded to S3,
// the AFI pipeline generates the image, an f1.2xlarge is launched, the AFI
// is loaded on slot 0, and a batch is classified remotely — the exact flow
// of Section 3.3, steps 7–8 of the paper.
//
//	go run ./examples/cloud_deploy
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"condor"
	"condor/internal/aws"
	"condor/internal/models"
)

func main() {
	// Start the simulated AWS services on a local port (in production this
	// would be the real AWS endpoint; `cmd/awsmock` serves the same thing
	// as a standalone process).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := aws.NewServer(aws.Options{AFIGenerationDelay: 300 * time.Millisecond})
	//condorlint:ignore goleak — demo endpoint lives for the process lifetime
	go http.Serve(ln, srv) //nolint:errcheck
	endpoint := "http://" + ln.Addr().String()
	fmt.Println("simulated AWS endpoint at", endpoint)

	ir, ws, err := models.TC1()
	if err != nil {
		log.Fatal(err)
	}
	f := &condor.Framework{Logf: func(format string, a ...any) {
		fmt.Printf("[condor] "+format+"\n", a...)
	}}
	build, err := f.BuildAccelerator(condor.Input{IR: ir, Weights: ws})
	if err != nil {
		log.Fatal(err)
	}

	// Deploy through S3 → AFI → F1. The licence comes from the FPGA
	// Developer AMI, the environment the paper requires Condor to run in
	// for cloud deployments.
	start := time.Now()
	dep, err := f.DeployCloud(build, condor.CloudConfig{
		Endpoint: endpoint,
		License:  aws.LicenseFromAMI(),
		Bucket:   "condor-example",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeployed in %v: AFI %s on instance %s slot %d\n",
		time.Since(start).Round(time.Millisecond), dep.AFI.FpgaImageGlobalID, dep.InstanceID, dep.Slot)

	imgs := models.USPSImages(6, 9)
	outs, ms, err := dep.Infer(imgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote inference: %d images, %.4f ms modeled kernel time\n", len(outs), ms)
	for i, out := range outs {
		fmt.Printf("  image %d -> class %d\n", i, out.ArgMax())
	}

	// Without the Developer AMI licence the same flow fails at AFI
	// creation — the accessibility constraint the paper designs around.
	_, err = f.DeployCloud(build, condor.CloudConfig{
		Endpoint: endpoint, Bucket: "condor-unlicensed",
	})
	fmt.Printf("\nwithout the FPGA Developer AMI licence: %v\n", err)

	if err := dep.Terminate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("instance terminated")
}
