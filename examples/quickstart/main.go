// Quickstart: build a small CNN accelerator from the Condor network
// representation, deploy it on a local board, and classify a batch of
// synthetic USPS digits.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"condor"
	"condor/internal/condorir"
	"condor/internal/models"
)

func main() {
	// The Condor-specific network representation: topology plus the
	// hardware knobs (board, clock, per-layer parallelism). This is the
	// "manual" input method of the frontend; the JSON form of this struct
	// is what `condor build -network` consumes.
	ir := &condorir.Network{
		Name:         "quickstart",
		Board:        "zc706", // an on-premise board: no AFI flow needed
		FrequencyMHz: 100,
		Input:        condorir.InputShape{Channels: 1, Height: 16, Width: 16},
		Layers: []condorir.Layer{
			{Name: "conv1", Type: "Convolution", KernelSize: 5, Stride: 1, NumOutput: 8, Bias: true, PEGroup: -1},
			{Name: "relu1", Type: "ReLU", PEGroup: -1},
			{Name: "pool1", Type: "MaxPooling", KernelSize: 2, Stride: 2, PEGroup: -1},
			{Name: "fc1", Type: "InnerProduct", NumOutput: 10, Bias: true, PEGroup: -1},
			{Name: "prob", Type: "LogSoftMax", PEGroup: -1},
		},
	}
	// Weights normally come from training; here they are seeded synthetic
	// values in the external weights file format.
	ws, err := models.RandomWeights(ir, 42)
	if err != nil {
		log.Fatal(err)
	}

	f := &condor.Framework{Logf: func(format string, a ...any) {
		fmt.Printf("[condor] "+format+"\n", a...)
	}}
	build, err := f.BuildAccelerator(condor.Input{IR: ir, Weights: ws})
	if err != nil {
		log.Fatal(err)
	}
	perf, err := build.Performance()
	if err != nil {
		log.Fatal(err)
	}
	u := build.Report.Utilization
	fmt.Printf("\nbuilt %s for %s: %.0f MHz, LUT %.1f%%, DSP %.1f%%, %.2f GFLOPS\n\n",
		build.Meta.Name, build.Meta.Board, build.Meta.AchievedMHz, 100*u.LUT, 100*u.DSP, perf.GFLOPS)

	dep, err := f.DeployLocal(build)
	if err != nil {
		log.Fatal(err)
	}
	imgs := models.USPSImages(4, 1)
	outs, ms, err := dep.Infer(imgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classified %d images in %.4f ms (modeled device time)\n", len(outs), ms)
	for i, out := range outs {
		fmt.Printf("  image %d -> class %d\n", i, out.ArgMax())
	}
}
