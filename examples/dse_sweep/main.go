// Design-space exploration: the paper performs this phase manually and
// lists its automation as future work; Condor automates it. This example
// explores the VGG-16 features-extraction stage on the F1 VU9P — the
// Table 2 experiment — and prints the accepted moves, the resource cost of
// each step, and the final configuration, then contrasts unconstrained
// exploration with the paper's preliminary 2-port configuration.
//
//	go run ./examples/dse_sweep
package main

import (
	"fmt"
	"log"

	"condor/internal/dse"
	"condor/internal/models"
	"condor/internal/perf"
)

func main() {
	ir := models.VGG16Features()
	fmt.Printf("exploring %s (%d layers) on %s at %.0f MHz\n\n",
		ir.Name, len(ir.Layers), ir.Board, ir.FrequencyMHz)

	// The paper's preliminary improved methodology: up to 2 feature maps
	// read concurrently, 2 computed in parallel.
	capped, err := dse.Explore(ir, dse.Options{
		FeaturesOnly:       true,
		MaxIterations:      96,
		MaxPortParallelism: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("2-port cap (paper's preliminary configuration)", capped)

	// Unconstrained: let the explorer spend the whole VU9P.
	full, err := dse.Explore(ir, dse.Options{
		FeaturesOnly:  true,
		MaxIterations: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("unconstrained (resource-limited)", full)

	fmt.Println("accepted moves of the unconstrained run (first 15):")
	for i, mv := range full.Trace {
		if i >= 15 {
			fmt.Printf("  ... %d more\n", len(full.Trace)-15)
			break
		}
		fmt.Printf("  %-10s -> in=%d out=%d   bottleneck %d cycles\n",
			mv.Layer, mv.Parallelism.In, mv.Parallelism.Out, mv.Bottleneck)
	}
}

func report(name string, res *dse.Result) {
	u := res.Report.Utilization
	gflops := perf.SteadyStateGFLOPS(featFLOPs(res), res.BottleneckCycles, res.Report.AchievedMHz)
	fmt.Printf("%s:\n", name)
	fmt.Printf("  bottleneck %d cycles, %.1f GFLOPS (features only)\n", res.BottleneckCycles, gflops)
	fmt.Printf("  LUT %.1f%%  DSP %.1f%%  BRAM %.1f%%, fmax %.0f MHz\n",
		100*u.LUT, 100*u.DSP, 100*u.BRAM, res.Report.FmaxMHz)
	fmt.Printf("  %d accepted moves\n\n", len(res.Trace))
}

// featFLOPs sums the features-extraction work of the explored network.
func featFLOPs(res *dse.Result) int64 {
	// VGG-16 features: ≈30.7 GFLOPs per 224x224 image; recompute from the
	// per-PE MAC model for exactness.
	var total int64
	for _, pe := range res.Spec.PEs {
		for _, l := range pe.Layers {
			switch {
			case l.Kind.IsFeatureExtraction():
				if l.Kernel > 0 {
					if l.OutShape.Channels == l.InShape.Channels && l.Stride == l.Kernel {
						// pooling: one op per window element
						total += int64(l.OutShape.Volume()) * int64(l.Kernel*l.Kernel)
					} else {
						macs := int64(l.OutShape.Volume()) * int64(l.InShape.Channels) * int64(l.Kernel*l.Kernel)
						total += 2*macs + int64(l.OutShape.Volume())
					}
				}
			}
		}
	}
	return total
}
