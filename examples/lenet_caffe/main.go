// The Caffe integration path: start from a lenet.prototxt and a binary
// caffemodel (exactly the files Caffe produces), let the frontend translate
// them into the Condor representation, build the F1 accelerator at the
// paper's 180 MHz, and study the batch-size behaviour of Figure 5.
//
//	go run ./examples/lenet_caffe
package main

import (
	"fmt"
	"log"

	"condor"
	"condor/internal/models"
)

func main() {
	// In a real deployment these bytes come from files on disk; the
	// generator produces a genuine protobuf-wire-format caffemodel.
	caffemodel, err := models.LeNetCaffeModel(7)
	if err != nil {
		log.Fatal(err)
	}

	f := condor.New()
	build, err := f.BuildAccelerator(condor.Input{
		Prototxt:     models.LeNetPrototxt,
		CaffeModel:   caffemodel,
		Board:        "aws-f1-vu9p",
		FrequencyMHz: 180,
	})
	if err != nil {
		log.Fatal(err)
	}
	perf, err := build.Performance()
	if err != nil {
		log.Fatal(err)
	}
	u := build.Report.Utilization
	fmt.Printf("LeNet on the F1 VU9P @ %.0f MHz\n", build.Meta.AchievedMHz)
	fmt.Printf("  LUT %.2f%%  FF %.2f%%  DSP %.2f%%  BRAM %.2f%%\n", 100*u.LUT, 100*u.FF, 100*u.DSP, 100*u.BRAM)
	fmt.Printf("  %.2f GFLOPS, %.2f GFLOPS/W (Table 1 reports 3.35 and 0.78)\n\n", perf.GFLOPS, perf.GFLOPSPerWatt)

	// Figure 5: the mean time per image drops as the batch grows, because
	// consecutive images overlap across the per-layer PEs; convergence is
	// reached once the batch exceeds the number of layers.
	curve, err := build.BatchCurve([]int{1, 2, 4, 8, 16, 32, 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("batch size vs mean ms/image (Figure 5):")
	for _, p := range curve {
		fmt.Printf("  %4d  %8.4f\n", p.Batch, p.MeanMsPerImage)
	}

	// And a functional check: run a real batch through the simulated
	// fabric and report the predicted classes.
	acc, err := build.Fabric()
	if err != nil {
		log.Fatal(err)
	}
	imgs := models.MNISTImages(5, 3)
	outs, _, err := acc.Run(imgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsample classifications:")
	for i, out := range outs {
		fmt.Printf("  digit image %d -> class %d\n", i, out.ArgMax())
	}
}
