// Fixed-point quantization: build LeNet at float32, int16 and int8, compare
// resources, power and weight footprint, measure the accuracy drift against
// the float reference, and co-simulate the quantized fabric — the
// bandwidth/resource optimisation of the paper's related work (Qiu et al.,
// FPGA'16) applied to the Condor flow.
//
//	go run ./examples/quantized
package main

import (
	"fmt"
	"log"

	"condor"
	"condor/internal/models"
	"condor/internal/quant"
)

func main() {
	fmt.Printf("%-8s %8s %8s %8s %10s %12s %10s\n",
		"format", "DSP%", "BRAM%", "W", "weights", "max drift", "top-1")

	var ref *condor.Build
	for _, p := range []quant.Precision{quant.Float32, quant.Int16, quant.Int8} {
		ir, ws, err := models.LeNet()
		if err != nil {
			log.Fatal(err)
		}
		b, err := condor.New().BuildAccelerator(condor.Input{IR: ir, Weights: ws, Precision: p})
		if err != nil {
			log.Fatal(err)
		}
		if p == quant.Float32 {
			ref = b
		}

		// Accuracy drift vs. the float32 reference over a sample batch.
		drift := quant.Drift{Top1Agreement: 1}
		if p != quant.Float32 {
			refNet, err := ref.IR.BuildNN(ref.Weights)
			if err != nil {
				log.Fatal(err)
			}
			qNet, err := b.IR.BuildNN(b.Weights)
			if err != nil {
				log.Fatal(err)
			}
			drift, err = quant.EvaluateDrift(refNet, qNet, models.MNISTImages(16, 5))
			if err != nil {
				log.Fatal(err)
			}
		}

		s, err := b.Performance()
		if err != nil {
			log.Fatal(err)
		}
		weightsKiB := float64(0)
		if b.QuantReport != nil {
			weightsKiB = float64(b.QuantReport.BytesAfter) / 1024
		} else {
			wb, err := b.WeightsBytes()
			if err != nil {
				log.Fatal(err)
			}
			weightsKiB = float64(len(wb)) / 1024
		}
		fmt.Printf("%-8s %7.2f%% %7.2f%% %8.2f %8.0fKiB %12.2g %9.0f%%\n",
			p, 100*b.Report.Utilization.DSP, 100*b.Report.Utilization.BRAM,
			s.PowerW, weightsKiB, drift.MaxAbsDiff, 100*drift.Top1Agreement)

		// Co-simulate the quantized fabric against its own (quantized)
		// reference: the fabric must be exact regardless of precision.
		rep, err := b.Cosim(3, 7, 0)
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Passed() {
			log.Fatalf("%s co-simulation failed: %+v", p, rep)
		}
	}
	fmt.Println("\nall precisions passed co-simulation against the reference engine")
}
