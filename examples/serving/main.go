// The serving tier end to end: one accelerator design is deployed onto a
// heterogeneous pool — two local boards plus both FPGA slots of an
// f1.4xlarge behind a simulated cloud endpoint — and a serve.Server
// multiplexes a burst of concurrent clients onto it with dynamic batching,
// admission control and least-loaded scheduling. This is the traffic-facing
// layer the paper's cloud integration points at: the framework builds and
// deploys the accelerator, the serving tier turns it into an inference
// service.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"condor"
	"condor/internal/aws"
	"condor/internal/models"
	"condor/internal/serve"
)

func main() {
	// A simulated cloud endpoint that also injects transient 503s; the
	// client's jittered retries absorb them.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	cloud := aws.NewServer(aws.Options{
		AFIGenerationDelay: 100 * time.Millisecond,
		TransientErrorRate: 0.05,
	})
	go http.Serve(ln, cloud) //nolint:errcheck
	endpoint := "http://" + ln.Addr().String()

	f := condor.New()
	ir, ws, err := models.TC1()
	if err != nil {
		log.Fatal(err)
	}

	// Local boards: one build, two programmed devices.
	localBuild, err := f.BuildAccelerator(condor.Input{IR: ir, Weights: ws, Board: "ku115"})
	if err != nil {
		log.Fatal(err)
	}
	var pool []serve.Backend
	for i := 0; i < 2; i++ {
		dep, err := f.DeployLocal(localBuild)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("pool += local board", dep.ID())
		pool = append(pool, dep)
	}

	// Cloud slots: the F1 build goes through S3 → AFI → instance, then each
	// programmed slot becomes an independently scheduled backend.
	ir2, ws2, err := models.TC1()
	if err != nil {
		log.Fatal(err)
	}
	cloudBuild, err := f.BuildAccelerator(condor.Input{IR: ir2, Weights: ws2})
	if err != nil {
		log.Fatal(err)
	}
	dep, err := f.DeployCloud(cloudBuild, condor.CloudConfig{
		Endpoint: endpoint, License: aws.LicenseFromAMI(),
		Bucket: "condor-serving-example", InstanceType: "f1.4xlarge", Slots: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Terminate() //nolint:errcheck
	for _, sb := range dep.SlotBackends() {
		fmt.Println("pool += F1 slot", sb.ID())
		pool = append(pool, sb)
	}

	srv, err := serve.New(serve.Config{
		Backends:    pool,
		MaxBatch:    8,
		BatchWindow: 2 * time.Millisecond,
		QueueDepth:  128,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A burst of concurrent single-image clients.
	const clients = 48
	imgs := models.USPSImages(clients, 11)
	var ok, backpressure atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if _, _, err := srv.Submit(ctx, imgs[c]); err != nil {
				backpressure.Add(1)
				return
			}
			ok.Add(1)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}

	st := srv.Stats()
	fmt.Printf("\n%d clients in %v: %d served, %d rejected/expired\n",
		clients, wall.Round(time.Millisecond), ok.Load(), backpressure.Load())
	fmt.Printf("batches: %d dispatched, size histogram %v (largest %d)\n",
		st.Batches, st.BatchSizeHist, st.MaxBatchFormed())
	fmt.Printf("latency: kernel p50/p95/p99 = %.2f/%.2f/%.2f ms, end-to-end p50 = %.2f ms\n",
		st.KernelMsP50, st.KernelMsP95, st.KernelMsP99, st.TotalMsP50)
	for _, b := range st.Backends {
		fmt.Printf("  backend %-22s %3d batches %3d images  busy %.2f ms (util %.1f%%)\n",
			b.ID, b.Batches, b.Images, b.BusyMs, 100*b.Utilization)
	}
}
