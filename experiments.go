package condor

import (
	"fmt"
	"math/rand"

	"condor/internal/board"
	"condor/internal/condorir"
	"condor/internal/dataflow"
	"condor/internal/dse"
	"condor/internal/hls"
	"condor/internal/models"
	"condor/internal/obs"
	"condor/internal/perf"
	"condor/internal/power"
	"condor/internal/tensor"
)

// This file drives the reproduction of the paper's evaluation (Section 4):
// Table 1 (F1 deployment results for TC1 and LeNet), Table 2 (preliminary
// results of the improved methodology, features-extraction only) and
// Figure 5 (mean time per image vs. batch size). The same entry points are
// used by the root benchmarks and by cmd/condor-bench.

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Name          string
	LUTPct        float64
	FFPct         float64
	DSPPct        float64
	BRAMPct       float64
	GFLOPS        float64
	GFLOPSPerWatt float64
	AchievedMHz   float64
}

// Table1Paper holds the values the paper reports, for side-by-side output.
var Table1Paper = []Table1Row{
	{Name: "TC1", LUTPct: 10.47, FFPct: 9.02, DSPPct: 5.63, BRAMPct: 0.97, GFLOPS: 8.36, GFLOPSPerWatt: 1.56, AchievedMHz: 100},
	{Name: "LeNet", LUTPct: 9.48, FFPct: 8.6, DSPPct: 2.53, BRAMPct: 24.38, GFLOPS: 3.35, GFLOPSPerWatt: 0.78, AchievedMHz: 180},
}

// table1Case builds one Table 1 deployment (sequential feature maps, full
// intra-layer parallelism — one PE per layer — as the paper configures both
// test cases) and evaluates it.
func table1Case(name string, ir *condorir.Network, ws *condorir.WeightSet) (Table1Row, *Build, error) {
	b, err := New().BuildAccelerator(Input{IR: ir, Weights: ws})
	if err != nil {
		return Table1Row{}, nil, err
	}
	s, err := b.Performance()
	if err != nil {
		return Table1Row{}, nil, err
	}
	u := b.Report.Utilization
	return Table1Row{
		Name:          name,
		LUTPct:        100 * u.LUT,
		FFPct:         100 * u.FF,
		DSPPct:        100 * u.DSP,
		BRAMPct:       100 * u.BRAM,
		GFLOPS:        s.GFLOPS,
		GFLOPSPerWatt: s.GFLOPSPerWatt,
		AchievedMHz:   b.Meta.AchievedMHz,
	}, b, nil
}

// Table1 reproduces the paper's Table 1: TC1 at 100 MHz and LeNet (via the
// Caffe frontend) at 180 MHz, both deployed on the F1 VU9P.
func Table1() ([]Table1Row, error) {
	irT, wsT, err := models.TC1()
	if err != nil {
		return nil, err
	}
	rowT, _, err := table1Case("TC1", irT, wsT)
	if err != nil {
		return nil, err
	}
	irL, wsL, err := models.LeNet()
	if err != nil {
		return nil, err
	}
	rowL, _, err := table1Case("LeNet", irL, wsL)
	if err != nil {
		return nil, err
	}
	return []Table1Row{rowT, rowL}, nil
}

// Table2Row is one column of the paper's Table 2 (GFLOPS of the improved
// methodology, features-extraction part only).
type Table2Row struct {
	Name   string
	GFLOPS float64
}

// Table2Paper holds the paper's reported values.
var Table2Paper = []Table2Row{
	{Name: "TC1", GFLOPS: 16.56},
	{Name: "LeNet", GFLOPS: 53.51},
	{Name: "VGG-16", GFLOPS: 113.30},
}

// Table2PortCap is the feature-map port parallelism of the improved
// methodology's preliminary evaluation: up to two input feature maps read
// concurrently and two output maps computed in parallel, which places all
// three networks in the band the paper reports (see EXPERIMENTS.md).
const Table2PortCap = 2

// table2Case runs the improved methodology on one network: the automated
// design-space exploration raises feature-map port parallelism on the
// features-extraction pipeline under the VU9P budget, and the sustained
// GFLOPS of that sub-pipeline is reported.
func table2Case(name string, ir *condorir.Network) (Table2Row, error) {
	res, err := dse.Explore(ir, dse.Options{FeaturesOnly: true, MaxIterations: 96, MaxPortParallelism: Table2PortCap})
	if err != nil {
		return Table2Row{}, err
	}
	featFLOPs, err := res.IR.FeatureFLOPs()
	if err != nil {
		return Table2Row{}, err
	}
	gflops := perf.SteadyStateGFLOPS(featFLOPs, res.BottleneckCycles, res.Report.AchievedMHz)
	return Table2Row{Name: name, GFLOPS: gflops}, nil
}

// Table2 reproduces the paper's Table 2 on TC1, LeNet and the VGG-16
// features stage (the VGG-16 classifier is not synthesizable with the
// current methodology, as the paper reports; see VerifyVGGClassifierGate).
func Table2() ([]Table2Row, error) {
	irT, _, err := models.TC1()
	if err != nil {
		return nil, err
	}
	rowT, err := table2Case("TC1", irT)
	if err != nil {
		return nil, err
	}
	irL, _, err := models.LeNet()
	if err != nil {
		return nil, err
	}
	rowL, err := table2Case("LeNet", irL)
	if err != nil {
		return nil, err
	}
	rowV, err := table2Case("VGG-16", models.VGG16Features())
	if err != nil {
		return nil, err
	}
	return []Table2Row{rowT, rowL, rowV}, nil
}

// VerifyVGGClassifierGate checks the paper's statement that the VGG-16
// fully-connected layers are not synthesizable with the current
// methodology, returning the synthesis error.
func VerifyVGGClassifierGate() error {
	return ClassifierGate(models.VGG16())
}

// ClassifierGate runs the synthesis feasibility check on a network,
// returning the HLS rejection (or nil when the design is synthesizable).
func ClassifierGate(ir *condorir.Network) error {
	spec, err := dataflow.BuildSpec(ir)
	if err != nil {
		return fmt.Errorf("condor: unexpected spec failure: %w", err)
	}
	if _, err := hls.Estimate(spec); err != nil {
		return err // the expected "not synthesizable" error
	}
	return nil
}

// Figure5Series is one curve of the paper's Figure 5.
type Figure5Series struct {
	Name   string
	Layers int // logical layers: the paper's convergence knee
	Points []perf.BatchPoint
}

// Figure5 reproduces the paper's Figure 5 for TC1 and LeNet over the given
// batch sizes.
func Figure5(batches []int) ([]Figure5Series, error) {
	var out []Figure5Series
	irT, wsT, err := models.TC1()
	if err != nil {
		return nil, err
	}
	bT, err := New().BuildAccelerator(Input{IR: irT, Weights: wsT})
	if err != nil {
		return nil, err
	}
	ptsT, err := bT.BatchCurve(batches)
	if err != nil {
		return nil, err
	}
	out = append(out, Figure5Series{Name: "TC1", Layers: bT.Spec.NumLayers(), Points: ptsT})

	irL, wsL, err := models.LeNet()
	if err != nil {
		return nil, err
	}
	bL, err := New().BuildAccelerator(Input{IR: irL, Weights: wsL})
	if err != nil {
		return nil, err
	}
	ptsL, err := bL.BatchCurve(batches)
	if err != nil {
		return nil, err
	}
	out = append(out, Figure5Series{Name: "LeNet", Layers: bL.Spec.NumLayers(), Points: ptsL})
	return out, nil
}

// DefaultFigure5Batches is the batch-size sweep used by the benchmarks and
// the CLI.
var DefaultFigure5Batches = []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64}

// Fabric instantiates the build's dataflow fabric directly (bypassing the
// SDAccel runtime), used by the benchmarks and cmd/condor-sim.
func (b *Build) Fabric() (*dataflow.Accelerator, error) {
	return dataflow.Instantiate(b.Spec, b.Weights)
}

// TraceFabric runs a batch through the build's fabric with span tracing
// attached, returning the recorded trace (one track per fabric element, one
// span per layer per image) alongside the run's stats. The trace exports to
// Chrome trace-event JSON via obs.Trace.WriteChromeTrace and summarises with
// obs.Trace.Summary; span cycle totals reconcile exactly with the stats.
func (b *Build) TraceFabric(batch []*tensor.Tensor) (*obs.Trace, *dataflow.RunStats, error) {
	acc, err := b.Fabric()
	if err != nil {
		return nil, nil, err
	}
	tr := obs.NewTrace()
	acc.SetTracer(tr)
	_, stats, err := acc.Run(batch)
	if err != nil {
		return nil, nil, err
	}
	return tr, stats, nil
}

// FabricMetricsSnapshot runs n seeded random images through the fabric and
// returns the run's counters in Prometheus text form — the one-shot metrics
// dump behind `condor-sim -metrics`.
func (b *Build) FabricMetricsSnapshot(n int, seed int64) (string, error) {
	acc, err := b.Fabric()
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(seed))
	imgs := make([]*tensor.Tensor, n)
	for i := range imgs {
		img := tensor.New(b.Spec.Input.Channels, b.Spec.Input.Height, b.Spec.Input.Width)
		img.FillRandom(rng, 1)
		imgs[i] = img
	}
	_, stats, err := acc.Run(imgs)
	if err != nil {
		return "", err
	}
	reg := obs.NewRegistry()
	stats.Publish(reg)
	return reg.TextSnapshot(), nil
}

// RooflineOf characterises a build with the roofline model: the compute
// roof from the synthesis report's MAC lanes, the bandwidth roof from the
// traffic model and the board's DDR bandwidth.
func RooflineOf(b *Build) (perf.Roofline, error) {
	brd, err := board.Lookup(b.Meta.Board)
	if err != nil {
		return perf.Roofline{}, err
	}
	net, err := b.IR.BuildNN(b.Weights)
	if err != nil {
		return perf.Roofline{}, err
	}
	lanes := 0
	for i := range b.Report.PEs {
		lanes += b.Report.PEs[i].MACs
	}
	return perf.AnalyzeRoofline(b.Spec, brd, lanes, net.TotalFLOPs(), b.Meta.AchievedMHz), nil
}

// PowerOf reports the modeled power of a build (exposed for the CLI).
func PowerOf(b *Build, gflops float64) float64 {
	return power.Model(b.Report.Total, b.Meta.AchievedMHz, gflops).TotalW()
}
